//! Minimal HTTP/1.1 framing over `std::net::TcpStream`.
//!
//! No network crates are available in this build environment, so the
//! service speaks just enough HTTP itself: request-line + headers +
//! `Content-Length` bodies, keep-alive by default, `Connection: close`
//! honoured. Chunked transfer encoding is not accepted on *requests*
//! (every client this crate ships sends sized bodies), but **is
//! produced on responses**: a [`StreamingResponse`] writes its body
//! through a [`ChunkedWriter`] as the handler generates it, so a batch
//! extraction's first bytes hit the wire after the first page instead
//! of after the last. HTTP/1.0 clients, which predate chunked framing,
//! get the same stream EOF-delimited with `Connection: close`. The
//! loopback [`Client`] decodes both framings.
//!
//! The server half reads through [`Conn`], whose read timeout doubles as
//! the graceful-shutdown poll interval: an idle keep-alive connection
//! wakes every timeout tick so its worker can notice the shutdown flag
//! instead of blocking in `read` forever. A small blocking [`Client`] is
//! included for loopback use.

use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Upper bound on an accepted request body (64 MiB — a generous batch).
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;
/// Upper bound on the request head (request line + headers); past it
/// the server answers `431 Request Header Fields Too Large` instead of
/// growing the read buffer without limit.
pub const MAX_HEAD_BYTES: usize = 64 * 1024;
/// Consecutive read timeouts tolerated mid-request before the peer is
/// declared dead (the timeout itself is the server's poll interval).
const SLOW_CLIENT_STRIKES: u32 = 240;

/// One parsed HTTP request. `PartialEq` exists for the parser property
/// tests (incremental == one-shot), not for application logic.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    pub method: String,
    /// Path without the query string, e.g. `/extract/movies/batch`.
    pub path: String,
    /// Raw query string (empty when absent).
    pub query: String,
    /// Header names are lower-cased; values are trimmed.
    pub headers: BTreeMap<String, String>,
    pub body: Vec<u8>,
    /// Request came in as HTTP/1.0 (close-by-default semantics).
    pub http10: bool,
}

impl Request {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(&name.to_ascii_lowercase()).map(String::as_str)
    }

    /// Should the connection close after this exchange? `Connection:
    /// close`, or an HTTP/1.0 request without an explicit keep-alive —
    /// 1.0 clients read the body to EOF, so keeping the connection open
    /// would hang them.
    pub fn wants_close(&self) -> bool {
        match self.header("connection") {
            Some(v) => v.eq_ignore_ascii_case("close"),
            None => self.http10,
        }
    }

    /// Raw value of a `k=v` query parameter (no percent-decoding; use
    /// [`decoded_query_param`](Self::decoded_query_param) for values
    /// that may carry escapes).
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == name).then_some(v)
        })
    }

    /// Percent-decoded value of a `k=v` query parameter. Keys are
    /// decoded before matching too, so `thr%65ads=4` still names
    /// `threads`. [`InvalidEscape`] means the matched pair carries an
    /// invalid escape — the caller should answer 400, not guess.
    pub fn decoded_query_param(&self, name: &str) -> Result<Option<String>, InvalidEscape> {
        for pair in self.query.split('&') {
            let Some((k, v)) = pair.split_once('=') else { continue };
            // An undecodable *key* can't match any caller's name; an
            // undecodable value on the matched key is the caller's 400.
            let Some(k) = percent_decode(k) else { continue };
            if k == name {
                return percent_decode(v).map(|v| Some(v.into_owned())).ok_or(InvalidEscape);
            }
        }
        Ok(None)
    }

    pub fn body_utf8(&self) -> std::borrow::Cow<'_, str> {
        String::from_utf8_lossy(&self.body)
    }
}

/// Marker error: a percent-escaped component failed to decode (bad hex
/// digits or non-UTF-8 result). Maps to a 400 at the handler layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InvalidEscape;

impl std::fmt::Display for InvalidEscape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("invalid percent-escape")
    }
}

impl std::error::Error for InvalidEscape {}

/// Outcome of waiting for the next request on a connection.
#[derive(Debug)]
pub enum ReadOutcome {
    Request(Request),
    /// Peer closed (or died) before a complete request arrived.
    Closed,
    /// Read timed out with no request in flight — caller may poll a
    /// shutdown flag and wait again.
    Idle,
    /// Unparseable, unsupported or oversized input; respond with the
    /// given status and close.
    Malformed(u16, &'static str),
}

/// Incremental progress from [`RequestParser::advance`].
#[derive(Debug)]
pub enum ParseProgress {
    /// The buffer does not yet hold a complete request.
    NeedMore,
    /// One complete request was parsed and drained from the buffer.
    Complete(Request),
    /// Unparseable, unsupported or oversized input; respond with the
    /// given status and close.
    Malformed(u16, &'static str),
}

/// Parsed request head waiting for its `Content-Length` body.
#[derive(Debug)]
struct PendingBody {
    method: String,
    path: String,
    query: String,
    headers: BTreeMap<String, String>,
    http10: bool,
    head_end: usize,
    /// Bytes (head + `\r\n\r\n` + body) the full request occupies.
    total: usize,
}

/// Incremental HTTP/1.1 request parser over an external byte buffer —
/// the one parser both server front ends use: the blocking [`Conn`]
/// feeds it between timed reads, the evented loop between readiness
/// events. Feed bytes into the buffer however they arrive, call
/// [`advance`](RequestParser::advance) after each arrival, and a
/// [`ParseProgress::Complete`] drains exactly that request from the
/// buffer — leftover pipelined bytes stay for the next call.
///
/// State is O(1) per connection: a `scanned` offset so the
/// `\r\n\r\n` search never rescans bytes (a byte-at-a-time trickle
/// stays linear, not quadratic), and the parsed head while its body is
/// in flight (the head parses once, not once per arrival).
#[derive(Debug)]
pub struct RequestParser {
    max_head_bytes: usize,
    /// Buffer prefix already scanned for the head terminator.
    scanned: usize,
    pending: Option<PendingBody>,
    /// Set once per request when the peer sent `Expect: 100-continue`
    /// (HTTP/1.1, body not yet complete); consumed by
    /// [`take_continue`](RequestParser::take_continue).
    send_continue: bool,
}

impl Default for RequestParser {
    fn default() -> RequestParser {
        RequestParser::new()
    }
}

impl RequestParser {
    pub fn new() -> RequestParser {
        RequestParser::with_max_head(MAX_HEAD_BYTES)
    }

    pub fn with_max_head(max_head_bytes: usize) -> RequestParser {
        RequestParser { max_head_bytes, scanned: 0, pending: None, send_continue: false }
    }

    /// A request head has been parsed but its body is incomplete.
    pub fn mid_body(&self) -> bool {
        self.pending.is_some()
    }

    /// True exactly once per request whose head asked for a
    /// `100 Continue` nod; the caller writes the interim response.
    pub fn take_continue(&mut self) -> bool {
        std::mem::take(&mut self.send_continue)
    }

    /// Try to complete one request from `buf`. On `Complete` the
    /// request's bytes are drained from the buffer; on `Malformed` the
    /// connection must be closed after the error response (parser state
    /// is not recoverable).
    pub fn advance(&mut self, buf: &mut Vec<u8>) -> ParseProgress {
        if self.pending.is_none() {
            // Resume the terminator scan where the last call stopped;
            // back up 3 bytes so a terminator split across arrivals is
            // still seen.
            let start = self.scanned.saturating_sub(3);
            let head_end = match buf[start..].windows(4).position(|w| w == b"\r\n\r\n") {
                Some(pos) => start + pos,
                None => {
                    self.scanned = buf.len();
                    if buf.len() > self.max_head_bytes {
                        return ParseProgress::Malformed(431, "request header fields too large");
                    }
                    return ParseProgress::NeedMore;
                }
            };
            if head_end > self.max_head_bytes {
                return ParseProgress::Malformed(431, "request header fields too large");
            }
            let Ok(head) = std::str::from_utf8(&buf[..head_end]) else {
                return ParseProgress::Malformed(400, "request head is not UTF-8");
            };
            let Some((method, path, query, headers, http10)) = parse_head(head) else {
                return ParseProgress::Malformed(400, "malformed request line or headers");
            };
            // Unsupported framing must be rejected, not misread as an
            // empty body — leftover chunk bytes would desync the
            // connection.
            if headers.contains_key("transfer-encoding") {
                return ParseProgress::Malformed(
                    400,
                    "Transfer-Encoding is not supported; send a Content-Length body",
                );
            }
            let content_length = match headers.get("content-length") {
                None => 0,
                Some(v) => match v.parse::<usize>() {
                    Ok(n) => n,
                    Err(_) => return ParseProgress::Malformed(400, "bad Content-Length"),
                },
            };
            if content_length > MAX_BODY_BYTES {
                return ParseProgress::Malformed(413, "request body too large");
            }
            let total = head_end + 4 + content_length;
            // An `Expect: 100-continue` client (curl does this for any
            // body over ~1 KiB) holds the body back until the server
            // nods — ignoring it costs a fixed ~1 s stall per large
            // request. Never for HTTP/1.0 peers: 1xx interim responses
            // postdate 1.0 (RFC 7231 §5.1.1 says ignore their Expect),
            // and a 1.0 client would misread the nod as the final
            // response.
            if !http10
                && buf.len() < total
                && headers.get("expect").is_some_and(|v| v.eq_ignore_ascii_case("100-continue"))
            {
                self.send_continue = true;
            }
            self.pending =
                Some(PendingBody { method, path, query, headers, http10, head_end, total });
        }
        let total = self.pending.as_ref().expect("pending head").total;
        if buf.len() < total {
            return ParseProgress::NeedMore;
        }
        let p = self.pending.take().expect("pending head");
        let body = buf[p.head_end + 4..p.total].to_vec();
        buf.drain(..p.total);
        self.scanned = 0;
        self.send_continue = false;
        ParseProgress::Complete(Request {
            method: p.method,
            path: p.path,
            query: p.query,
            headers: p.headers,
            body,
            http10: p.http10,
        })
    }
}

/// Server side of one TCP connection, with a reusable read buffer that
/// carries pipelined bytes across requests.
pub struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
    parser: RequestParser,
}

impl Conn {
    pub fn new(stream: TcpStream, read_timeout: Duration) -> std::io::Result<Conn> {
        stream.set_read_timeout(Some(read_timeout))?;
        // Responses are written in one piece; without NODELAY the kernel
        // would sit on small segments waiting for delayed ACKs (~40 ms a
        // round trip — catastrophic for request latency).
        stream.set_nodelay(true)?;
        Ok(Conn { stream, buf: Vec::new(), parser: RequestParser::new() })
    }

    /// Read one request, honouring the stream's read timeout as an idle
    /// poll interval.
    pub fn read_request(&mut self) -> ReadOutcome {
        let mut strikes = 0u32;
        loop {
            match self.parser.advance(&mut self.buf) {
                ParseProgress::Complete(req) => return ReadOutcome::Request(req),
                ParseProgress::Malformed(status, why) => {
                    return ReadOutcome::Malformed(status, why)
                }
                ParseProgress::NeedMore => {}
            }
            if self.parser.take_continue()
                && self.stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n").is_err()
            {
                return ReadOutcome::Closed;
            }
            match self.fill() {
                Ok(0) => return ReadOutcome::Closed,
                Ok(_) => strikes = 0,
                Err(e) if is_timeout(&e) => {
                    // Mid-request (head bytes buffered or body pending)
                    // a timeout is a strike, not idleness.
                    if self.buf.is_empty() && !self.parser.mid_body() {
                        return ReadOutcome::Idle;
                    }
                    strikes += 1;
                    if strikes > SLOW_CLIENT_STRIKES {
                        return ReadOutcome::Closed;
                    }
                }
                Err(_) => return ReadOutcome::Closed,
            }
        }
    }

    fn fill(&mut self) -> std::io::Result<usize> {
        let mut chunk = [0u8; 16 * 1024];
        let n = self.stream.read(&mut chunk)?;
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(n)
    }

    /// Discard input already queued in the kernel (bounded,
    /// non-blocking). Closing with unread bytes makes the kernel send
    /// RST, which can destroy a just-written error response before the
    /// client reads it — an oversized head (431) is exactly the case
    /// where the client has outrun the parser.
    pub fn discard_pending_input(&mut self) {
        self.buf.clear();
        if self.stream.set_nonblocking(true).is_err() {
            return;
        }
        let mut scratch = [0u8; 16 * 1024];
        let mut discarded = 0usize;
        while discarded < 1024 * 1024 {
            match self.stream.read(&mut scratch) {
                Ok(0) | Err(_) => break,
                Ok(n) => discarded += n,
            }
        }
        let _ = self.stream.set_nonblocking(false);
    }

    pub fn write_response(&mut self, resp: &Response) -> std::io::Result<()> {
        // One write for head + body: a single TCP segment burst, no
        // Nagle/delayed-ACK stall between the two halves.
        let out = encode_full_response(resp);
        self.stream.write_all(&out)?;
        self.stream.flush()
    }

    /// Write a streamed response: head first, then the body produced
    /// incrementally by `resp.body` — chunked framing when `chunked`
    /// (HTTP/1.1), raw EOF-delimited bytes otherwise (HTTP/1.0, which
    /// forces `close`). Returns the body bytes that reached the wire.
    ///
    /// An `Err` means the stream is in an unknown state (the head, and
    /// possibly a partial body, may have been sent) — the caller must
    /// close the connection; a chunked client detects the truncation by
    /// the missing terminal chunk.
    pub fn write_streaming(
        &mut self,
        resp: StreamingResponse,
        chunked: bool,
        close: bool,
    ) -> std::io::Result<u64> {
        let head =
            encode_streaming_head(resp.status, resp.content_type, &resp.headers, chunked, close);
        self.stream.write_all(&head)?;
        let body = resp.body;
        let bytes = if chunked {
            let mut writer = ChunkedWriter::new(&mut self.stream);
            body(&mut writer)?;
            writer.finish()?
        } else {
            let mut writer = CountingWriter { inner: &mut self.stream, bytes: 0 };
            body(&mut writer)?;
            writer.bytes
        };
        self.stream.flush()?;
        Ok(bytes)
    }
}

/// Wire bytes for a full (non-streamed) response: head + body in one
/// buffer. Both server front ends (the blocking [`Conn`] writer and the
/// evented loop's write queue) go through this, which is what makes
/// their responses byte-identical.
pub fn encode_full_response(resp: &Response) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        resp.status,
        status_text(resp.status),
        resp.content_type,
        resp.body.len(),
        if resp.close { "close" } else { "keep-alive" },
    );
    for (name, value) in &resp.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let mut out = head.into_bytes();
    out.extend_from_slice(&resp.body);
    out
}

/// Wire bytes for a streamed response's head: chunked framing when
/// `chunked` (HTTP/1.1), EOF-delimited (which forces `close`)
/// otherwise. Takes the head fields rather than the whole
/// [`StreamingResponse`] so the evented loop — which hands the body
/// producer to a streamer thread and keeps only the metadata — can
/// encode the identical head. Shared like [`encode_full_response`].
pub fn encode_streaming_head(
    status: u16,
    content_type: &str,
    headers: &[(String, String)],
    chunked: bool,
    close: bool,
) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\n{}connection: {}\r\n",
        status,
        status_text(status),
        content_type,
        if chunked { "transfer-encoding: chunked\r\n" } else { "" },
        if close && chunked {
            "close"
        } else if chunked {
            "keep-alive"
        } else {
            "close"
        },
    );
    for (name, value) in headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    head.into_bytes()
}

/// Body producer of a [`StreamingResponse`]: writes the whole body into
/// the given sink (a [`ChunkedWriter`] over the connection), returning
/// an error to abort mid-stream.
pub type StreamBody = Box<dyn FnOnce(&mut dyn Write) -> std::io::Result<()> + Send>;

/// A response whose body is produced incrementally while it is written
/// to the connection — the status and headers must be decidable up
/// front, which is why handlers validate everything *before* returning
/// one. Memory stays bounded by the producer's working set, not the
/// body size.
pub struct StreamingResponse {
    pub status: u16,
    pub content_type: &'static str,
    /// Extra headers beyond content-type/transfer-encoding/connection.
    pub headers: Vec<(String, String)>,
    pub body: StreamBody,
}

impl std::fmt::Debug for StreamingResponse {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingResponse")
            .field("status", &self.status)
            .field("content_type", &self.content_type)
            .field("headers", &self.headers)
            .finish_non_exhaustive()
    }
}

/// What a handler hands back: a fully materialised [`Response`] or a
/// [`StreamingResponse`] driven while writing.
#[derive(Debug)]
pub enum Reply {
    Full(Response),
    Streaming(StreamingResponse),
}

impl From<Response> for Reply {
    fn from(resp: Response) -> Reply {
        Reply::Full(resp)
    }
}

/// Buffer threshold before a chunk is flushed: large enough that chunk
/// framing overhead is noise, small enough that the first page of a
/// batch reaches the client promptly and peak buffering stays constant.
pub(crate) const CHUNK_FLUSH_BYTES: usize = 16 * 1024;

/// An [`io::Write`](Write) adapter producing HTTP chunked framing:
/// accumulates writes into a fixed-threshold buffer, emits each full
/// buffer as one `<len-hex>\r\n…\r\n` chunk, and
/// [`finish`](ChunkedWriter::finish) flushes the tail plus the terminal
/// `0\r\n\r\n` chunk.
///
/// Generic over the sink so both front ends share the exact framing:
/// the blocking path writes straight to the `TcpStream`, the evented
/// path into a bounded pipe the event loop drains — identical producer
/// writes yield identical wire bytes either way.
pub struct ChunkedWriter<W: Write> {
    inner: W,
    buf: Vec<u8>,
    /// Body bytes accepted (pre-framing), for metrics.
    bytes: u64,
}

impl<W: Write> ChunkedWriter<W> {
    pub fn new(inner: W) -> ChunkedWriter<W> {
        ChunkedWriter { inner, buf: Vec::with_capacity(CHUNK_FLUSH_BYTES + 1024), bytes: 0 }
    }

    fn flush_chunk(&mut self) -> std::io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let mut framed = format!("{:x}\r\n", self.buf.len()).into_bytes();
        framed.extend_from_slice(&self.buf);
        framed.extend_from_slice(b"\r\n");
        self.buf.clear();
        self.inner.write_all(&framed)
    }

    /// Flush the remaining buffer and write the terminal chunk. Returns
    /// the total body bytes streamed (pre-framing).
    pub fn finish(mut self) -> std::io::Result<u64> {
        self.flush_chunk()?;
        self.inner.write_all(b"0\r\n\r\n")?;
        Ok(self.bytes)
    }
}

impl<W: Write> Write for ChunkedWriter<W> {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.buf.extend_from_slice(data);
        self.bytes += data.len() as u64;
        if self.buf.len() >= CHUNK_FLUSH_BYTES {
            self.flush_chunk()?;
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.flush_chunk()?;
        self.inner.flush()
    }
}

/// Plain pass-through writer that counts body bytes (the HTTP/1.0
/// EOF-delimited stream path).
struct CountingWriter<'a> {
    inner: &'a mut TcpStream,
    bytes: u64,
}

impl Write for CountingWriter<'_> {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.inner.write_all(data)?;
        self.bytes += data.len() as u64;
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Decode `%XX` percent-escapes in a path segment or query component.
/// Escape-free input (the hot path: every well-known route) borrows —
/// no allocation. Returns `None` for an invalid escape (`%` not
/// followed by two hex digits) or when the decoded bytes are not
/// UTF-8 — both are client errors, never silently passed through. `+`
/// is left literal: these are URI components, not
/// `application/x-www-form-urlencoded` bodies.
pub fn percent_decode(s: &str) -> Option<std::borrow::Cow<'_, str>> {
    if !s.contains('%') {
        return Some(std::borrow::Cow::Borrowed(s));
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes.get(i + 1..i + 3)?;
            let hi = (hex[0] as char).to_digit(16)?;
            let lo = (hex[1] as char).to_digit(16)?;
            out.push((hi * 16 + lo) as u8);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok().map(std::borrow::Cow::Owned)
}

/// Position of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

#[allow(clippy::type_complexity)]
fn parse_head(head: &str) -> Option<(String, String, String, BTreeMap<String, String>, bool)> {
    let mut lines = head.split("\r\n");
    let request_line = lines.next()?;
    let mut parts = request_line.split(' ');
    let method = parts.next()?.to_string();
    let target = parts.next()?;
    let version = parts.next()?;
    if !version.starts_with("HTTP/1.") || parts.next().is_some() || method.is_empty() {
        return None;
    }
    let http10 = version == "HTTP/1.0";
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    let mut headers = BTreeMap::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':')?;
        headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
    }
    Some((method, path, query, headers, http10))
}

/// An HTTP response about to be written.
#[derive(Clone, Debug)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    /// Extra headers beyond content-type/length/connection.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
    /// Close the connection after this response.
    pub close: bool,
}

impl Response {
    pub fn new(status: u16, content_type: &'static str, body: Vec<u8>) -> Response {
        Response { status, content_type, headers: Vec::new(), body, close: false }
    }

    pub fn json(status: u16, json: &retroweb_json::Json) -> Response {
        Response::new(status, "application/json", json.to_string_pretty().into_bytes())
    }

    pub fn xml(body: String) -> Response {
        Response::new(200, "application/xml; charset=UTF-8", body.into_bytes())
    }

    pub fn text(status: u16, body: &str) -> Response {
        Response::new(status, "text/plain; charset=UTF-8", body.as_bytes().to_vec())
    }

    /// `{"error": message}` with the given status.
    pub fn error(status: u16, message: &str) -> Response {
        let json = retroweb_json::Json::object(vec![(
            "error".to_string(),
            retroweb_json::Json::from(message),
        )]);
        Response::json(status, &json)
    }

    pub fn with_header(mut self, name: &str, value: impl std::fmt::Display) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    pub fn closed(mut self) -> Response {
        self.close = true;
        self
    }
}

pub fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        201 => "Created",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

// ---- loopback client ------------------------------------------------------

/// A parsed client-side response.
#[derive(Clone, Debug)]
pub struct ClientResponse {
    pub status: u16,
    pub headers: BTreeMap<String, String>,
    pub body: Vec<u8>,
}

impl ClientResponse {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(&name.to_ascii_lowercase()).map(String::as_str)
    }

    pub fn body_utf8(&self) -> std::borrow::Cow<'_, str> {
        String::from_utf8_lossy(&self.body)
    }

    pub fn body_json(&self) -> Result<retroweb_json::Json, retroweb_json::ParseError> {
        retroweb_json::parse(&self.body_utf8())
    }
}

/// Blocking keep-alive HTTP client for loopback tests and benches.
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        stream.set_nodelay(true)?;
        Ok(Client { stream, buf: Vec::new() })
    }

    /// Send one request and read the sized response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> std::io::Result<ClientResponse> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nhost: loopback\r\n");
        for (name, value) in headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
        let mut out = head.into_bytes();
        out.extend_from_slice(body);
        self.stream.write_all(&out)?;
        self.stream.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<ClientResponse> {
        let head_end = loop {
            if let Some(pos) = find_head_end(&self.buf) {
                break pos;
            }
            let mut chunk = [0u8; 16 * 1024];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "connection closed before response head",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).into_owned();
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or_default().to_string();
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidData, "bad status line"))?;
        let mut headers = BTreeMap::new();
        for line in lines {
            if let Some((name, value)) = line.split_once(':') {
                headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
            }
        }
        self.buf.drain(..head_end + 4);
        let chunked =
            headers.get("transfer-encoding").is_some_and(|v| v.eq_ignore_ascii_case("chunked"));
        let body = if chunked {
            self.read_chunked_body()?
        } else if let Some(len) =
            headers.get("content-length").and_then(|v| v.parse::<usize>().ok())
        {
            self.read_sized_body(len)?
        } else if headers.get("connection").is_some_and(|v| v.eq_ignore_ascii_case("close")) {
            // EOF-delimited (the HTTP/1.0-style streamed fallback).
            self.read_to_close()?
        } else {
            return Err(std::io::Error::new(ErrorKind::InvalidData, "missing content-length"));
        };
        Ok(ClientResponse { status, headers, body })
    }

    /// Read `n` more bytes into the buffer, erroring on EOF.
    fn fill_buf(&mut self) -> std::io::Result<()> {
        let mut chunk = [0u8; 16 * 1024];
        let n = self.stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(())
    }

    fn read_sized_body(&mut self, len: usize) -> std::io::Result<Vec<u8>> {
        while self.buf.len() < len {
            self.fill_buf()?;
        }
        let body = self.buf[..len].to_vec();
        self.buf.drain(..len);
        Ok(body)
    }

    /// Decode a chunked body: `<len-hex>\r\n<data>\r\n`… `0\r\n\r\n`.
    /// A truncated stream (server aborted mid-body) surfaces as
    /// `UnexpectedEof`, never as a silently short body.
    fn read_chunked_body(&mut self) -> std::io::Result<Vec<u8>> {
        let mut body = Vec::new();
        loop {
            let line_end = loop {
                if let Some(pos) = self.buf.windows(2).position(|w| w == b"\r\n") {
                    break pos;
                }
                self.fill_buf()?;
            };
            let size_line = String::from_utf8_lossy(&self.buf[..line_end]).into_owned();
            self.buf.drain(..line_end + 2);
            let size = usize::from_str_radix(size_line.trim(), 16).map_err(|_| {
                std::io::Error::new(ErrorKind::InvalidData, format!("bad chunk size '{size_line}'"))
            })?;
            while self.buf.len() < size + 2 {
                self.fill_buf()?;
            }
            body.extend_from_slice(&self.buf[..size]);
            if &self.buf[size..size + 2] != b"\r\n" {
                return Err(std::io::Error::new(ErrorKind::InvalidData, "chunk missing CRLF"));
            }
            self.buf.drain(..size + 2);
            if size == 0 {
                return Ok(body);
            }
        }
    }

    fn read_to_close(&mut self) -> std::io::Result<Vec<u8>> {
        loop {
            let mut chunk = [0u8; 16 * 1024];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                let body = std::mem::take(&mut self.buf);
                return Ok(body);
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}

/// One-shot convenience: connect, send with `Connection: close`, read.
pub fn request_once(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<ClientResponse> {
    let mut client = Client::connect(addr)?;
    let mut all: Vec<(&str, &str)> = vec![("connection", "close")];
    all.extend_from_slice(headers);
    client.request(method, path, &all, body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_parsing() {
        let (method, path, query, headers, http10) = parse_head(
            "POST /extract/m/batch?threads=4 HTTP/1.1\r\nContent-Length: 3\r\nX-Page-Uri: u1",
        )
        .unwrap();
        assert_eq!(method, "POST");
        assert_eq!(path, "/extract/m/batch");
        assert_eq!(query, "threads=4");
        assert_eq!(headers.get("content-length").map(String::as_str), Some("3"));
        assert_eq!(headers.get("x-page-uri").map(String::as_str), Some("u1"));
        assert!(!http10);
        assert!(parse_head("GET /x HTTP/1.0").unwrap().4);
        assert!(parse_head("GARBAGE").is_none());
        assert!(parse_head("GET /x SPDY/9").is_none());
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("plain").as_deref(), Some("plain"));
        assert!(
            matches!(percent_decode("plain"), Some(std::borrow::Cow::Borrowed(_))),
            "escape-free input must not allocate"
        );
        assert_eq!(percent_decode("my%20cluster").as_deref(), Some("my cluster"));
        assert_eq!(percent_decode("a%2Fb").as_deref(), Some("a/b"));
        assert_eq!(percent_decode("caf%C3%A9").as_deref(), Some("café"));
        assert_eq!(
            percent_decode("a+b").as_deref(),
            Some("a+b"),
            "+ stays literal in URI components"
        );
        // Invalid escapes and non-UTF-8 results are rejected, not guessed.
        assert_eq!(percent_decode("bad%"), None);
        assert_eq!(percent_decode("bad%2"), None);
        assert_eq!(percent_decode("bad%zz"), None);
        assert_eq!(percent_decode("lone%FF"), None, "0xFF alone is not UTF-8");
    }

    #[test]
    fn decoded_query_params() {
        let req = Request {
            method: "GET".into(),
            path: "/x".into(),
            query: "name=my%20cluster&thr%65ads=4&bad=%zz".into(),
            headers: BTreeMap::new(),
            body: Vec::new(),
            http10: false,
        };
        assert_eq!(req.decoded_query_param("name"), Ok(Some("my cluster".into())));
        assert_eq!(req.decoded_query_param("threads"), Ok(Some("4".into())), "escaped key matches");
        assert_eq!(
            req.decoded_query_param("bad"),
            Err(InvalidEscape),
            "invalid escape in value is an error"
        );
        assert_eq!(req.decoded_query_param("missing"), Ok(None));
    }

    #[test]
    fn query_params_and_close_semantics() {
        let mut req = Request {
            method: "GET".into(),
            path: "/x".into(),
            query: "a=1&threads=8".into(),
            headers: BTreeMap::new(),
            body: Vec::new(),
            http10: false,
        };
        assert_eq!(req.query_param("threads"), Some("8"));
        assert_eq!(req.query_param("missing"), None);
        // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close.
        assert!(!req.wants_close());
        req.http10 = true;
        assert!(req.wants_close());
        req.headers.insert("connection".into(), "keep-alive".into());
        assert!(!req.wants_close());
        req.headers.insert("connection".into(), "close".into());
        assert!(req.wants_close());
    }
}
