//! # retroweb-service — a multi-threaded extraction server
//!
//! The paper's §3.5 repository exists so "external agents, for instance
//! the XML extractor" can apply recorded rules at scale. This crate is
//! that serving layer: a std-only HTTP/1.1 server
//! (`std::net::TcpListener` + a fixed-size worker pool with a bounded
//! job queue — no network dependencies) exposing the rule repository
//! and the compiled-rule extraction pipeline:
//!
//! | Endpoint | Role |
//! |---|---|
//! | `POST /extract/{cluster}` | one HTML page → extracted XML |
//! | `POST /extract/{cluster}/batch` | JSON page array → parallel extraction **streamed** as chunked XML (or NDJSON via `Accept: application/x-ndjson`) |
//! | `GET`/`PUT`/`DELETE /clusters/{name}` | rule CRUD over `retroweb-json` persistence |
//! | `POST /check/{cluster}` | §7 failure detection (drift report) on submitted pages |
//! | `GET /healthz`, `GET /metrics` | liveness, counters, latency histograms |
//!
//! **Streaming batches:** the batch endpoint drives the extraction
//! sinks (`retrozilla::ExtractionSink`) straight into the connection —
//! first bytes on the wire after the first page, server memory
//! O(threads) instead of O(batch), concatenated XML byte-identical to
//! the materialised document.
//!
//! **Sharded, lock-free repository:** the in-memory store is a
//! `retrozilla::ShardedRepository` used exclusively through the
//! `retrozilla::ClusterStore` storage trait — reads (extraction,
//! `GET`s, metrics) clone an atomically-published `Arc` snapshot and
//! never take a lock; a `PUT` copy-on-writes only the one shard its
//! cluster hashes to. With `--shards N`, persistence moves to a
//! `<repo>.d/` directory with one snapshot + WAL pair per shard
//! (parallel replay, per-shard compaction, migration from the
//! single-file pair; see the README's sharding section).
//!
//! **Hot rule reload for free:** every extraction runs through the
//! store's compiled-cluster cache, and `PUT /clusters/{name}`
//! re-records the cluster, which invalidates that cache — so the next
//! request (including ones already queued) executes the new rules, with
//! no restart and no dropped in-flight requests.
//!
//! **Graceful shutdown:** [`ServerHandle::shutdown`] stops accepting,
//! lets the worker pool drain every queued connection, and joins all
//! threads; accepted requests are never dropped on the floor.
//!
//! Ship form: the `retrozilla-serve` binary (`--repo rules.json` to
//! load/persist, `--self-test` for a loopback smoke test). See the
//! crate README for a curl walkthrough.

#[cfg(unix)]
pub mod evented;
pub mod handlers;
pub mod http;
pub mod metrics;
pub mod pipe;
pub mod pool;
pub mod testdata;

pub use http::{request_once, Client, ClientResponse, Reply, Request, Response, StreamingResponse};
pub use metrics::{Endpoint, Histogram, Metrics};
pub use pool::ThreadPool;

use retrozilla::{
    ClusterRules, ClusterStore, DurableRepository, RepositoryStats, RuleRepository,
    ShardedOpenReport, ShardedRepository, WalStats,
};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads serving connections.
    pub threads: usize,
    /// Bounded connection-queue capacity (backpressure past this).
    pub queue_capacity: usize,
    /// Default per-batch extraction parallelism (`?threads=` overrides).
    pub extract_threads: usize,
    /// Idle-connection poll interval; also bounds shutdown latency.
    pub read_timeout: Duration,
    /// When set, `PUT`/`DELETE /clusters` persist the repository here.
    /// By default mutations go through a write-ahead log next to this
    /// file (see `wal_path` / `compact_every`); with `wal_disabled`
    /// each mutation rewrites the whole snapshot instead.
    pub repo_path: Option<PathBuf>,
    /// WAL file for rule mutations; `None` derives `<repo_path>.wal`.
    /// Ignored without `repo_path`.
    pub wal_path: Option<PathBuf>,
    /// Mutations folded into the snapshot per compaction (per shard in
    /// sharded-WAL mode).
    pub compact_every: u64,
    /// Opt out of the WAL: every mutation rewrites the whole snapshot
    /// (the pre-WAL behaviour; O(repo) per mutation).
    pub wal_disabled: bool,
    /// In-memory repository shards. Reads are always lock-free `Arc`
    /// snapshot clones; more shards spread *writer* contention and (in
    /// sharded-WAL mode) the on-disk layout.
    pub shards: usize,
    /// Use the sharded WAL **directory** layout (`<repo>.d/`, one
    /// snapshot + log pair per shard) instead of the single-file pair.
    /// Requires `repo_path`; ignored with `wal_disabled`. An existing
    /// single-file layout is migrated in on first start.
    pub sharded_wal: bool,
    /// Serve through the evented front end: one `poll(2)` loop thread
    /// owns every socket and only *ready requests* occupy workers, so
    /// idle keep-alive connections cost a registration instead of a
    /// thread. Unix only. The worker-pool front end stays the default.
    pub evented: bool,
    /// Evented mode: admission cap on concurrently open connections;
    /// beyond it new arrivals are shed with `503` + `Connection: close`.
    pub max_conns: usize,
    /// Evented mode: a connection that has sent part of a request head
    /// must complete it within this window (slowloris defence) or the
    /// loop answers `408` and closes.
    pub header_timeout: Duration,
    /// Evented mode: idle keep-alive connections (no request in
    /// progress) are closed after this long.
    pub idle_timeout: Duration,
    /// Evented mode: a connection that stops draining a pending
    /// response for this long is dropped (write-stall defence).
    pub write_stall_timeout: Duration,
    /// Evented mode: in-flight-bytes budget per streaming response —
    /// how far a producer may run ahead of a slow client before it
    /// blocks (backpressure) instead of buffering without bound.
    pub stream_budget: usize,
    /// Reject `PUT /clusters/{name}` bodies whose rules carry
    /// error-level lint findings (provably-empty XPaths, unsatisfiable
    /// predicates) with a `400` carrying the diagnostics. Warnings are
    /// reported in the response body either way.
    pub strict_lint: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 4,
            queue_capacity: 64,
            extract_threads: 4,
            read_timeout: Duration::from_millis(100),
            repo_path: None,
            wal_path: None,
            compact_every: 1024,
            wal_disabled: false,
            shards: 8,
            sharded_wal: false,
            evented: false,
            max_conns: 4096,
            header_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(60),
            write_stall_timeout: Duration::from_secs(30),
            stream_budget: 256 * 1024,
            strict_lint: false,
        }
    }
}

impl ServerConfig {
    /// The effective single-file WAL path: explicit `wal_path`, else
    /// `<repo>.wal`. `None` when the WAL is disabled or the sharded
    /// directory layout is active.
    pub fn effective_wal_path(&self) -> Option<PathBuf> {
        if self.wal_disabled || self.sharded_wal {
            return None;
        }
        self.legacy_wal_path()
    }

    /// The sharded layout's directory: `<repo>.d` next to the snapshot.
    pub fn shard_dir(&self) -> Option<PathBuf> {
        self.repo_path.as_deref().map(|repo| Self::suffixed(repo, ".d"))
    }

    /// The legacy single-file WAL the sharded layout migrates from:
    /// explicit `wal_path`, else `<repo>.wal`.
    pub fn legacy_wal_path(&self) -> Option<PathBuf> {
        match (&self.wal_path, &self.repo_path) {
            (Some(wal), _) => Some(wal.clone()),
            (None, Some(repo)) => Some(Self::suffixed(repo, ".wal")),
            (None, None) => None,
        }
    }

    fn suffixed(path: &std::path::Path, suffix: &str) -> PathBuf {
        let mut name = path.file_name().unwrap_or_default().to_os_string();
        name.push(suffix);
        path.with_file_name(name)
    }
}

/// State shared by every worker: the sharded rule store (lock-free
/// snapshot reads + per-shard compiled-rule caches), its durability
/// layer (per-shard WAL/snapshot persistence), the metrics, and the
/// shutdown flag.
pub struct ServiceState {
    store: Arc<ShardedRepository>,
    durable: DurableRepository,
    sharded_open: Option<ShardedOpenReport>,
    metrics: Metrics,
    extract_threads: usize,
    strict_lint: bool,
    shutting_down: AtomicBool,
    /// Set once by `Server::start`; lets `/metrics` report live worker
    /// gauges without threading the pool through every handler.
    pool: OnceLock<Arc<ThreadPool>>,
}

impl ServiceState {
    /// The rule store, through the [`ClusterStore`] storage API — the
    /// only repository surface handlers use.
    pub fn repo(&self) -> &dyn ClusterStore {
        self.store.as_ref()
    }

    /// Per-shard cache/size gauges for `/metrics`.
    pub fn shard_stats(&self) -> Vec<RepositoryStats> {
        self.store.shard_stats()
    }

    /// The persistence layer itself, for mutation endpoints.
    pub fn durable(&self) -> &DurableRepository {
        &self.durable
    }

    /// What the sharded open did at startup (migration, manifest
    /// adoption); `None` outside sharded-WAL mode.
    pub fn sharded_open_report(&self) -> Option<ShardedOpenReport> {
        self.sharded_open
    }

    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    pub fn extract_threads(&self) -> usize {
        self.extract_threads
    }

    /// Whether `PUT /clusters/{name}` rejects rule sets with
    /// error-level lint findings.
    pub fn strict_lint(&self) -> bool {
        self.strict_lint
    }

    pub fn shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    /// Live worker-pool gauges for `/metrics`; `None` before
    /// `Server::start` wires the pool in.
    pub fn worker_snapshot(&self) -> Option<metrics::WorkerSnapshot> {
        self.pool.get().map(|pool| metrics::WorkerSnapshot {
            threads: pool.threads(),
            busy: pool.busy(),
            busy_high_water: pool.busy_high_water(),
            queued: pool.queued(),
        })
    }

    /// Record a cluster durably: on `Ok`, the mutation is fsynced (a WAL
    /// append in WAL mode — O(change), not O(repo)) and live in memory.
    pub fn record_cluster(&self, rules: ClusterRules) -> io::Result<()> {
        self.durable.record(rules)
    }

    /// Remove a cluster durably; returns whether it existed.
    pub fn remove_cluster(&self, name: &str) -> io::Result<bool> {
        self.durable.remove(name)
    }

    /// Aggregate WAL counters for `/metrics`; `None` when not in WAL
    /// mode.
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.durable.wal_stats()
    }

    /// Per-WAL-shard counters; `None` when not in WAL mode.
    pub fn shard_wal_stats(&self) -> Option<Vec<WalStats>> {
        self.durable.shard_wal_stats()
    }
}

/// A bound-but-not-yet-serving server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServiceState>,
    config: ServerConfig,
}

impl Server {
    /// Bind the listener and wrap the repository in shared state.
    ///
    /// `seed` is the base state (typically loaded from the snapshot
    /// file, or seeded in-process); its clusters are recorded into the
    /// sharded store. With `repo_path` set and the WAL enabled (the
    /// default), any existing `<repo>.wal` is **replayed over the
    /// seeded store** here — recovering mutations acknowledged after
    /// the last compaction — and future mutations append to it. With
    /// `sharded_wal`, the `<repo>.d/` directory layout is opened
    /// instead (one snapshot + log per shard, migrated from the
    /// single-file pair on first start); the seed initialises a
    /// brand-new layout (inside the migration's crash-safe commit
    /// point, legacy files winning over seed clusters) — an existing
    /// layout's replayed history (including deletions) is
    /// authoritative and the seed is ignored. With `wal_disabled`,
    /// mutations rewrite the snapshot whole.
    pub fn bind(seed: RuleRepository, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let shards = config.shards.max(1);
        let (store, durable, sharded_open) =
            if config.repo_path.is_some() && config.sharded_wal && !config.wal_disabled {
                let dir = config.shard_dir().expect("repo_path implies a shard dir");
                let (durable, store, report) = DurableRepository::open_sharded(
                    &dir,
                    shards,
                    config.compact_every,
                    Some(&seed.snapshot()),
                    config.repo_path.as_deref(),
                    config.legacy_wal_path().as_deref(),
                )
                .map_err(io::Error::other)?;
                (store, durable, Some(report))
            } else {
                let store = Arc::new(ShardedRepository::new(shards));
                for (_, rules) in seed.snapshot().iter() {
                    store.record(rules.clone());
                }
                let dyn_store = Arc::clone(&store) as Arc<dyn ClusterStore>;
                let durable = match (&config.repo_path, config.effective_wal_path()) {
                    (Some(snapshot), Some(wal)) => DurableRepository::attach_wal(
                        dyn_store,
                        snapshot.clone(),
                        &wal,
                        config.compact_every,
                    )?,
                    (Some(snapshot), None) => {
                        DurableRepository::full_rewrite(dyn_store, snapshot.clone())
                    }
                    (None, _) => DurableRepository::ephemeral(dyn_store),
                };
                (store, durable, None)
            };
        let state = Arc::new(ServiceState {
            store,
            durable,
            sharded_open,
            metrics: Metrics::new(),
            extract_threads: config.extract_threads.max(1),
            strict_lint: config.strict_lint,
            shutting_down: AtomicBool::new(false),
            pool: OnceLock::new(),
        });
        Ok(Server { listener, state, config })
    }

    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Spawn the front end (worker-pool acceptor by default, evented
    /// loop with `config.evented`) and the worker pool; returns the
    /// control handle.
    pub fn start(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let Server { listener, state, config } = self;
        let pool = Arc::new(ThreadPool::new(config.threads, config.queue_capacity));
        let _ = state.pool.set(Arc::clone(&pool));
        if config.evented {
            #[cfg(unix)]
            {
                let loop_state = Arc::clone(&state);
                let acceptor = evented::spawn_loop(listener, loop_state, pool, &config)?;
                return Ok(ServerHandle { addr, state, acceptor: Some(acceptor) });
            }
            #[cfg(not(unix))]
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "evented mode needs poll(2); use the worker-pool front end",
            ));
        }
        let accept_state = Arc::clone(&state);
        let read_timeout = config.read_timeout;
        let acceptor =
            std::thread::Builder::new().name("retroweb-acceptor".to_string()).spawn(move || {
                for stream in listener.incoming() {
                    if accept_state.shutting_down() {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    accept_state.metrics().add_connection();
                    let conn_state = Arc::clone(&accept_state);
                    let job = Box::new(move || serve_connection(stream, &conn_state, read_timeout));
                    if pool.submit(job).is_err() {
                        break;
                    }
                }
                // Drain: every accepted-and-queued connection still gets
                // served before the workers exit.
                pool.shutdown();
            })?;
        Ok(ServerHandle { addr, state, acceptor: Some(acceptor) })
    }
}

/// Control handle for a running server.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServiceState>,
    acceptor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn state(&self) -> &Arc<ServiceState> {
        &self.state
    }

    /// Graceful shutdown: stop accepting, drain the queue, join every
    /// thread. In-flight requests complete; idle keep-alive connections
    /// are closed at the next poll tick.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }

    /// Block until the server stops (i.e. until some other shutdown
    /// path, such as SIGKILL, takes the process down).
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }

    fn begin_shutdown(&self) {
        self.state.shutting_down.store(true, Ordering::SeqCst);
        // Poke the listener so a blocked `accept` observes the flag.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.begin_shutdown();
            if let Some(acceptor) = self.acceptor.take() {
                let _ = acceptor.join();
            }
        }
    }
}

/// Serve one connection: keep-alive request loop with a shutdown-aware
/// idle poll. In-flight requests always complete; the connection closes
/// once the client asks for it, goes away, or shutdown begins.
fn serve_connection(stream: TcpStream, state: &Arc<ServiceState>, read_timeout: Duration) {
    let Ok(mut conn) = http::Conn::new(stream, read_timeout) else { return };
    loop {
        match conn.read_request() {
            http::ReadOutcome::Idle => {
                if state.shutting_down() {
                    return;
                }
            }
            http::ReadOutcome::Closed => return,
            http::ReadOutcome::Malformed(status, why) => {
                let _ = conn.write_response(&Response::error(status, why).closed());
                conn.discard_pending_input();
                return;
            }
            http::ReadOutcome::Request(req) => {
                let started = Instant::now();
                let (endpoint, reply) = handlers::route(state, &req);
                match reply {
                    http::Reply::Full(mut resp) => {
                        state.metrics().observe(endpoint, resp.status, started.elapsed());
                        if req.wants_close() || state.shutting_down() {
                            resp.close = true;
                        }
                        let write_ok = conn.write_response(&resp).is_ok();
                        if !write_ok || resp.close {
                            return;
                        }
                    }
                    http::Reply::Streaming(resp) => {
                        // Chunked framing needs an HTTP/1.1 peer; a 1.0
                        // client gets the stream EOF-delimited, which
                        // forces close. Latency is measured to the end
                        // of the body — the handler's work happens
                        // while writing.
                        let chunked = !req.http10;
                        let close = !chunked || req.wants_close() || state.shutting_down();
                        let status = resp.status;
                        let write_ok = conn.write_streaming(resp, chunked, close).is_ok();
                        state.metrics().observe(endpoint, status, started.elapsed());
                        if !write_ok || close {
                            return;
                        }
                    }
                }
            }
        }
    }
}
