//! Live service metrics: lock-free atomic counters plus fixed-bucket
//! latency histograms, rendered as JSON by `GET /metrics`.
//!
//! Everything here is written on the request hot path, so recording is a
//! handful of relaxed atomic increments — no locks, no allocation.
//! Quantiles are estimated from the histogram buckets (the reported
//! p50/p99 is the upper bound of the bucket holding that rank), which is
//! the usual precision/overhead trade for serving metrics.

use retroweb_json::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Endpoint families tracked separately (one histogram each).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Endpoint {
    Healthz,
    Metrics,
    Clusters,
    Lint,
    Extract,
    ExtractBatch,
    Check,
    Other,
}

impl Endpoint {
    pub const ALL: [Endpoint; 8] = [
        Endpoint::Healthz,
        Endpoint::Metrics,
        Endpoint::Clusters,
        Endpoint::Lint,
        Endpoint::Extract,
        Endpoint::ExtractBatch,
        Endpoint::Check,
        Endpoint::Other,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::Clusters => "clusters",
            Endpoint::Lint => "lint",
            Endpoint::Extract => "extract",
            Endpoint::ExtractBatch => "extract-batch",
            Endpoint::Check => "check",
            Endpoint::Other => "other",
        }
    }

    fn index(self) -> usize {
        Endpoint::ALL.iter().position(|e| *e == self).expect("endpoint in ALL")
    }
}

/// Bucket upper bounds in microseconds; one overflow bucket follows.
const BUCKET_BOUNDS_US: [u64; 14] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 5_000_000,
];
const BUCKETS: usize = BUCKET_BOUNDS_US.len() + 1;

/// Fixed-bucket latency histogram.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Histogram {
    pub fn record(&self, elapsed: Duration) {
        let us = elapsed.as_micros().min(u64::MAX as u128) as u64;
        let idx = BUCKET_BOUNDS_US.iter().position(|&b| us <= b).unwrap_or(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Estimated quantile in milliseconds: the upper bound of the bucket
    /// containing the rank (the mean for overflow-bucket ranks).
    pub fn quantile_ms(&self, q: f64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                if i < BUCKET_BOUNDS_US.len() {
                    return BUCKET_BOUNDS_US[i] as f64 / 1_000.0;
                }
                break;
            }
        }
        self.mean_ms().max(BUCKET_BOUNDS_US[BUCKET_BOUNDS_US.len() - 1] as f64 / 1_000.0)
    }

    pub fn mean_ms(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum_us.load(Ordering::Relaxed) as f64 / count as f64 / 1_000.0
        }
    }

    fn to_json(&self) -> Json {
        Json::object(vec![
            ("count".into(), Json::from(self.count() as usize)),
            ("mean_ms".into(), Json::from(round3(self.mean_ms()))),
            ("p50_ms".into(), Json::from(self.quantile_ms(0.50))),
            ("p99_ms".into(), Json::from(self.quantile_ms(0.99))),
        ])
    }
}

#[derive(Debug, Default)]
struct PerEndpoint {
    requests: AtomicU64,
    latency: Histogram,
}

/// All service counters. One instance lives in the shared service state;
/// handlers and the connection loop update it with relaxed atomics.
#[derive(Debug, Default)]
pub struct Metrics {
    requests_total: AtomicU64,
    responses_2xx: AtomicU64,
    responses_4xx: AtomicU64,
    responses_5xx: AtomicU64,
    pages_extracted: AtomicU64,
    failures_detected: AtomicU64,
    /// Response-body bytes produced by streamed (chunked) replies —
    /// pre-framing, i.e. what the client decodes.
    bytes_streamed: AtomicU64,
    rule_reloads: AtomicU64,
    connections: AtomicU64,
    /// Evented-front-end gauges and totals (all zero in worker-pool
    /// mode): connections currently open / requests currently in
    /// flight, plus shed (503 at max-conns), deadline-closed, and
    /// pipelined-request totals. Accepted connections share the
    /// `connections` counter above — only one front end runs per server.
    evented_open: AtomicU64,
    evented_active: AtomicU64,
    evented_shed: AtomicU64,
    evented_timed_out: AtomicU64,
    evented_pipelined: AtomicU64,
    /// Lint findings observed at `PUT /clusters/{name}` time, one
    /// counter per analyzer code (parallel to `retrozilla::LINT_CODES`).
    /// These are *observed-at-the-door* totals; the current state of
    /// the repository lives in the `RepositoryStats` severity gauges.
    lint_observed: [AtomicU64; LINT_CODE_COUNT],
    /// `PUT`s rejected by strict-lint mode (error-level findings).
    lint_strict_rejections: AtomicU64,
    /// `PUT`s rejected because a rule's XPath failed to parse.
    lint_parse_rejections: AtomicU64,
    per_endpoint: [PerEndpoint; Endpoint::ALL.len()],
}

/// Length of the analyzer's stable code list — fixes the per-code
/// counter array at compile time.
const LINT_CODE_COUNT: usize = retrozilla::LINT_CODES.len();

/// Worker-pool gauges for `/metrics`, read from the live pool.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerSnapshot {
    pub threads: usize,
    pub busy: usize,
    pub busy_high_water: usize,
    pub queued: usize,
}

impl Metrics {
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Record one completed request.
    pub fn observe(&self, endpoint: Endpoint, status: u16, elapsed: Duration) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
        let class = match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        class.fetch_add(1, Ordering::Relaxed);
        let per = &self.per_endpoint[endpoint.index()];
        per.requests.fetch_add(1, Ordering::Relaxed);
        per.latency.record(elapsed);
    }

    pub fn add_pages_extracted(&self, n: usize) {
        self.pages_extracted.fetch_add(n as u64, Ordering::Relaxed);
    }

    pub fn add_failures_detected(&self, n: usize) {
        self.failures_detected.fetch_add(n as u64, Ordering::Relaxed);
    }

    pub fn add_bytes_streamed(&self, n: u64) {
        self.bytes_streamed.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_rule_reload(&self) {
        self.rule_reloads.fetch_add(1, Ordering::Relaxed);
    }

    /// Fold the lint findings of one `PUT` body into the per-code
    /// observation counters.
    pub fn observe_lint(&self, lint: &retrozilla::ClusterLint) {
        for finding in &lint.diagnostics {
            if let Some(i) =
                retrozilla::LINT_CODES.iter().position(|c| *c == finding.diagnostic.code)
            {
                self.lint_observed[i].fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// A `PUT` was rejected by strict-lint mode.
    pub fn add_strict_lint_rejection(&self) {
        self.lint_strict_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// A `PUT` was rejected because a rule's XPath failed to parse.
    pub fn add_lint_parse_rejection(&self) {
        self.lint_parse_rejections.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add_connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Evented loop: a connection was registered (post-admission).
    pub fn conn_opened(&self) {
        self.evented_open.fetch_add(1, Ordering::Relaxed);
    }

    /// Evented loop: a connection's slot was released.
    pub fn conn_closed(&self) {
        self.evented_open.fetch_sub(1, Ordering::Relaxed);
    }

    /// Evented loop: a parsed request was handed to the worker pool.
    pub fn request_started(&self) {
        self.evented_active.fetch_add(1, Ordering::Relaxed);
    }

    /// Evented loop: that request's response is fully on the wire (or
    /// the connection died trying).
    pub fn request_finished(&self) {
        self.evented_active.fetch_sub(1, Ordering::Relaxed);
    }

    pub fn add_shed(&self) {
        self.evented_shed.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add_timed_out(&self) {
        self.evented_timed_out.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add_pipelined(&self) {
        self.evented_pipelined.fetch_add(1, Ordering::Relaxed);
    }

    pub fn open_connections(&self) -> u64 {
        self.evented_open.load(Ordering::Relaxed)
    }

    pub fn active_requests(&self) -> u64 {
        self.evented_active.load(Ordering::Relaxed)
    }

    pub fn shed_total(&self) -> u64 {
        self.evented_shed.load(Ordering::Relaxed)
    }

    pub fn timed_out_total(&self) -> u64 {
        self.evented_timed_out.load(Ordering::Relaxed)
    }

    pub fn pipelined_total(&self) -> u64 {
        self.evented_pipelined.load(Ordering::Relaxed)
    }

    pub fn connections_total(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    pub fn requests_total(&self) -> u64 {
        self.requests_total.load(Ordering::Relaxed)
    }

    /// Full snapshot for `GET /metrics`, folding in the repository's
    /// compiled-cache counters (aggregate plus per-shard gauges when
    /// the store is sharded) and — when the server persists through a
    /// write-ahead log — the WAL's append/compaction/replay counters
    /// (again aggregate plus per-shard in the sharded layout).
    pub fn to_json(
        &self,
        repo: retrozilla::RepositoryStats,
        repo_shards: &[retrozilla::RepositoryStats],
        wal: Option<retrozilla::WalStats>,
        wal_shards: Option<&[retrozilla::WalStats]>,
        workers: Option<WorkerSnapshot>,
    ) -> Json {
        let load = |c: &AtomicU64| Json::from(c.load(Ordering::Relaxed) as usize);
        let by_endpoint = Endpoint::ALL
            .iter()
            .map(|e| (e.name().to_string(), load(&self.per_endpoint[e.index()].requests)))
            .collect();
        let latency = Endpoint::ALL
            .iter()
            .filter(|e| self.per_endpoint[e.index()].latency.count() > 0)
            .map(|e| (e.name().to_string(), self.per_endpoint[e.index()].latency.to_json()))
            .collect();
        let mut root = Json::object(vec![
            (
                "requests".into(),
                Json::object(vec![
                    ("total".into(), load(&self.requests_total)),
                    ("by_endpoint".into(), Json::Object(by_endpoint)),
                ]),
            ),
            (
                "responses".into(),
                Json::object(vec![
                    ("2xx".into(), load(&self.responses_2xx)),
                    ("4xx".into(), load(&self.responses_4xx)),
                    ("5xx".into(), load(&self.responses_5xx)),
                ]),
            ),
            ("connections".into(), load(&self.connections)),
            ("pages_extracted".into(), load(&self.pages_extracted)),
            ("failures_detected".into(), load(&self.failures_detected)),
            ("bytes_streamed".into(), load(&self.bytes_streamed)),
            ("rule_reloads".into(), load(&self.rule_reloads)),
            ("repository".into(), {
                let mut section = repo_stats_json(&repo);
                if repo_shards.len() > 1 {
                    section.set(
                        "shards",
                        Json::Array(repo_shards.iter().map(repo_stats_json).collect()),
                    );
                }
                section
            }),
            ("fusion".into(), fusion_json(&repo)),
            ("lint".into(), self.lint_json(&repo)),
            ("evented".into(), {
                let open = self.evented_open.load(Ordering::Relaxed);
                let active = self.evented_active.load(Ordering::Relaxed);
                Json::object(vec![
                    ("open".into(), Json::from(open as usize)),
                    ("idle".into(), Json::from(open.saturating_sub(active) as usize)),
                    ("active".into(), Json::from(active as usize)),
                    ("accepted".into(), load(&self.connections)),
                    ("shed".into(), load(&self.evented_shed)),
                    ("timed_out".into(), load(&self.evented_timed_out)),
                    ("pipelined".into(), load(&self.evented_pipelined)),
                ])
            }),
            ("latency_ms".into(), Json::Object(latency)),
        ]);
        if let Some(workers) = workers {
            root.set(
                "workers",
                Json::object(vec![
                    ("threads".into(), Json::from(workers.threads)),
                    ("busy".into(), Json::from(workers.busy)),
                    ("busy_high_water".into(), Json::from(workers.busy_high_water)),
                    ("queued".into(), Json::from(workers.queued)),
                ]),
            );
        }
        if let Some(wal) = wal {
            let mut section = wal_stats_json(&wal);
            if let Some(shards) = wal_shards {
                if shards.len() > 1 {
                    section
                        .set("per_shard", Json::Array(shards.iter().map(wal_stats_json).collect()));
                }
            }
            root.set("wal", section);
        }
        root
    }

    /// The `lint` section: current-state severity gauges (from the
    /// repository's cached clusters, same walk as the fusion gauges)
    /// plus the PUT-time observation counters by analyzer code and the
    /// strict/parse rejection totals.
    fn lint_json(&self, repo: &retrozilla::RepositoryStats) -> Json {
        let observed = retrozilla::LINT_CODES
            .iter()
            .enumerate()
            .map(|(i, code)| {
                (
                    code.to_string(),
                    Json::from(self.lint_observed[i].load(Ordering::Relaxed) as usize),
                )
            })
            .collect();
        Json::object(vec![
            ("errors".into(), Json::from(repo.lint_errors)),
            ("warnings".into(), Json::from(repo.lint_warnings)),
            ("infos".into(), Json::from(repo.lint_infos)),
            ("error_clusters".into(), Json::from(repo.lint_error_clusters)),
            ("observed_by_code".into(), Json::Object(observed)),
            (
                "strict_rejections".into(),
                Json::from(self.lint_strict_rejections.load(Ordering::Relaxed) as usize),
            ),
            (
                "parse_rejections".into(),
                Json::from(self.lint_parse_rejections.load(Ordering::Relaxed) as usize),
            ),
        ])
    }
}

/// One repository-gauge object — shared by the aggregate `repository`
/// section and each entry of its per-shard breakdown.
fn repo_stats_json(repo: &retrozilla::RepositoryStats) -> Json {
    Json::object(vec![
        ("clusters".into(), Json::from(repo.clusters)),
        ("compiled_cache_entries".into(), Json::from(repo.compiled_cache_entries)),
        ("compiled_cache_hits".into(), Json::from(repo.compiled_cache_hits as usize)),
        ("compiled_cache_builds".into(), Json::from(repo.compiled_cache_builds as usize)),
        (
            "compiled_cache_invalidations".into(),
            Json::from(repo.compiled_cache_invalidations as usize),
        ),
        ("swap_spins".into(), Json::from(repo.swap_spins as usize)),
    ])
}

/// The `fusion` section: how well the cached clusters' rule sets fused
/// into one-pass plans. `paths_fallback`/`fallback_clusters` make a rule
/// set that defeats the planner visible in production.
fn fusion_json(repo: &retrozilla::RepositoryStats) -> Json {
    Json::object(vec![
        ("plans".into(), Json::from(repo.fused_plans)),
        ("paths_fused".into(), Json::from(repo.fused_paths)),
        ("paths_fallback".into(), Json::from(repo.fused_fallback_paths)),
        ("fallback_clusters".into(), Json::from(repo.fused_fallback_clusters)),
        ("steps_total".into(), Json::from(repo.fused_steps_total)),
        ("steps_shared".into(), Json::from(repo.fused_steps_shared)),
    ])
}

/// One WAL-counter object — aggregate `wal` section and each per-shard
/// entry.
fn wal_stats_json(wal: &retrozilla::WalStats) -> Json {
    Json::object(vec![
        ("appended_records".into(), Json::from(wal.appended_records as usize)),
        ("appended_bytes".into(), Json::from(wal.appended_bytes as usize)),
        ("compactions".into(), Json::from(wal.compactions as usize)),
        ("since_compaction".into(), Json::from(wal.since_compaction as usize)),
        ("wal_bytes".into(), Json::from(wal.wal_bytes as usize)),
        ("replayed_records".into(), Json::from(wal.replayed_records as usize)),
        ("replay_torn_bytes".into(), Json::from(wal.replay_torn_bytes as usize)),
    ])
}

fn round3(x: f64) -> f64 {
    (x * 1_000.0).round() / 1_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles() {
        let h = Histogram::default();
        for _ in 0..98 {
            h.record(Duration::from_micros(80)); // ≤ 100µs bucket
        }
        h.record(Duration::from_millis(40)); // ≤ 50ms bucket
        h.record(Duration::from_secs(30)); // overflow
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_ms(0.50), 0.1);
        assert_eq!(h.quantile_ms(0.99), 50.0);
        assert!(h.quantile_ms(1.0) >= 5_000.0);
        assert!(h.mean_ms() > 0.0);
    }

    #[test]
    fn observe_classifies_statuses() {
        let m = Metrics::new();
        m.observe(Endpoint::Extract, 200, Duration::from_micros(500));
        m.observe(Endpoint::Extract, 404, Duration::from_micros(500));
        m.observe(Endpoint::Check, 500, Duration::from_micros(500));
        m.add_pages_extracted(7);
        m.add_failures_detected(2);
        let json = m.to_json(retrozilla::RepositoryStats::default(), &[], None, None, None);
        assert!(json.get("wal").is_none(), "no wal section outside WAL mode");
        assert_eq!(json.get("requests").unwrap().get("total").unwrap().as_u64(), Some(3));
        assert_eq!(json.get("responses").unwrap().get("2xx").unwrap().as_u64(), Some(1));
        assert_eq!(json.get("responses").unwrap().get("4xx").unwrap().as_u64(), Some(1));
        assert_eq!(json.get("responses").unwrap().get("5xx").unwrap().as_u64(), Some(1));
        assert_eq!(json.get("pages_extracted").unwrap().as_u64(), Some(7));
        let by = json.get("requests").unwrap().get("by_endpoint").unwrap();
        assert_eq!(by.get("extract").unwrap().as_u64(), Some(2));
        assert!(json.get("latency_ms").unwrap().get("extract").is_some());
        assert!(json.get("latency_ms").unwrap().get("healthz").is_none());
    }

    #[test]
    fn wal_section_rendered_when_present() {
        let m = Metrics::new();
        let wal = retrozilla::WalStats {
            appended_records: 5,
            appended_bytes: 1234,
            compactions: 1,
            replayed_records: 3,
            replay_torn_bytes: 7,
            wal_bytes: 200,
            since_compaction: 2,
        };
        let json = m.to_json(retrozilla::RepositoryStats::default(), &[], Some(wal), None, None);
        let w = json.get("wal").expect("wal section");
        assert_eq!(w.get("appended_records").unwrap().as_u64(), Some(5));
        assert_eq!(w.get("appended_bytes").unwrap().as_u64(), Some(1234));
        assert_eq!(w.get("compactions").unwrap().as_u64(), Some(1));
        assert_eq!(w.get("replayed_records").unwrap().as_u64(), Some(3));
        assert_eq!(w.get("replay_torn_bytes").unwrap().as_u64(), Some(7));
        assert_eq!(w.get("wal_bytes").unwrap().as_u64(), Some(200));
        assert_eq!(w.get("since_compaction").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn fusion_section_rendered() {
        let m = Metrics::new();
        let repo = retrozilla::RepositoryStats {
            fused_plans: 2,
            fused_paths: 9,
            fused_fallback_paths: 1,
            fused_fallback_clusters: 1,
            fused_steps_total: 40,
            fused_steps_shared: 25,
            ..Default::default()
        };
        let json = m.to_json(repo, &[], None, None, None);
        let f = json.get("fusion").expect("fusion section");
        assert_eq!(f.get("plans").unwrap().as_u64(), Some(2));
        assert_eq!(f.get("paths_fused").unwrap().as_u64(), Some(9));
        assert_eq!(f.get("paths_fallback").unwrap().as_u64(), Some(1));
        assert_eq!(f.get("fallback_clusters").unwrap().as_u64(), Some(1));
        assert_eq!(f.get("steps_total").unwrap().as_u64(), Some(40));
        assert_eq!(f.get("steps_shared").unwrap().as_u64(), Some(25));
    }

    #[test]
    fn lint_section_rendered() {
        let m = Metrics::new();
        m.add_strict_lint_rejection();
        m.add_lint_parse_rejection();
        let repo = retrozilla::RepositoryStats {
            lint_errors: 2,
            lint_warnings: 3,
            lint_infos: 1,
            lint_error_clusters: 1,
            ..Default::default()
        };
        let json = m.to_json(repo, &[], None, None, None);
        let l = json.get("lint").expect("lint section");
        assert_eq!(l.get("errors").unwrap().as_u64(), Some(2));
        assert_eq!(l.get("warnings").unwrap().as_u64(), Some(3));
        assert_eq!(l.get("infos").unwrap().as_u64(), Some(1));
        assert_eq!(l.get("error_clusters").unwrap().as_u64(), Some(1));
        assert_eq!(l.get("strict_rejections").unwrap().as_u64(), Some(1));
        assert_eq!(l.get("parse_rejections").unwrap().as_u64(), Some(1));
        // One counter per analyzer code, keyed by the code itself.
        let by_code = l.get("observed_by_code").unwrap();
        for code in retrozilla::LINT_CODES {
            assert_eq!(by_code.get(code).unwrap().as_u64(), Some(0), "{code}");
        }
    }

    #[test]
    fn per_shard_gauges_rendered_when_sharded() {
        let m = Metrics::new();
        let shard = |clusters: usize, hits: u64| retrozilla::RepositoryStats {
            clusters,
            compiled_cache_hits: hits,
            ..Default::default()
        };
        let total = shard(5, 9);
        let per_shard = [shard(2, 4), shard(3, 5)];
        let wal_shard =
            |records: u64| retrozilla::WalStats { appended_records: records, ..Default::default() };
        let wal_total = wal_shard(7);
        let wal_per_shard = [wal_shard(3), wal_shard(4)];
        let json = m.to_json(total, &per_shard, Some(wal_total), Some(&wal_per_shard), None);
        let repo = json.get("repository").unwrap();
        assert_eq!(repo.get("clusters").unwrap().as_u64(), Some(5));
        let shards = repo.get("shards").unwrap().as_array().unwrap();
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].get("clusters").unwrap().as_u64(), Some(2));
        assert_eq!(shards[1].get("compiled_cache_hits").unwrap().as_u64(), Some(5));
        let wal = json.get("wal").unwrap();
        assert_eq!(wal.get("appended_records").unwrap().as_u64(), Some(7));
        let wal_shards = wal.get("per_shard").unwrap().as_array().unwrap();
        assert_eq!(wal_shards.len(), 2);
        assert_eq!(wal_shards[1].get("appended_records").unwrap().as_u64(), Some(4));

        // A single-shard store keeps the flat sections (no breakdown
        // noise in the legacy layout).
        let json =
            m.to_json(total, &per_shard[..1], Some(wal_total), Some(&wal_per_shard[..1]), None);
        assert!(json.get("repository").unwrap().get("shards").is_none());
        assert!(json.get("wal").unwrap().get("per_shard").is_none());
    }
}
