//! Condvar-bounded byte pipe between a streaming-body producer thread
//! and the evented front end's loop thread.
//!
//! Extracted from `evented` so the pipe's blocking protocol is
//! testable on its own — both as plain unit tests and under the
//! `retroweb_sync` model checker (`tests/conc_model.rs`, built with
//! `--cfg conc_check`), which exhaustively checks that an `abort` or a
//! `finish` always unblocks a budget-blocked producer.
//!
//! The producer blocks once `budget` bytes are in flight (slow client
//! ⇒ backpressure), the loop takes whatever is available on
//! write-readiness, and `abort` turns the producer's next write into an
//! error when the connection dies first.

use crate::http;
use retroweb_sync::{Condvar, Mutex};
use std::io;

struct PipeState {
    buf: Vec<u8>,
    /// `Some` once the producer finished; `Ok` carries body bytes
    /// (pre-framing) for metrics, `Err` means the stream is truncated
    /// and the connection must close without the terminal chunk.
    done: Option<Result<u64, ()>>,
    aborted: bool,
    /// A `Stream` message is already queued and not yet drained —
    /// producer-side notifications coalesce instead of flooding.
    notified: bool,
}

/// Bounded streaming pipe. See the module docs for the protocol; see
/// `docs/CONCURRENCY.md` for the invariants the model checker holds it
/// to.
pub struct BodyPipe {
    state: Mutex<PipeState>,
    space: Condvar,
    budget: usize,
}

impl BodyPipe {
    /// A pipe admitting at most `budget` buffered bytes (clamped up to
    /// the chunked-writer flush size so a single flush always fits).
    pub fn new(budget: usize) -> BodyPipe {
        BodyPipe {
            state: Mutex::new(PipeState {
                buf: Vec::new(),
                done: None,
                aborted: false,
                notified: false,
            }),
            space: Condvar::new(),
            budget: budget.max(http::CHUNK_FLUSH_BYTES),
        }
    }

    /// The effective in-flight byte budget (after clamping).
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Producer side: append `data`, blocking while the pipe is at
    /// budget. Errors once aborted. Returns whether this push is the
    /// first since the last drain (i.e. the loop needs a poke).
    pub fn push(&self, data: &[u8]) -> io::Result<bool> {
        let mut state = self.state.lock().expect("pipe lock poisoned");
        while state.buf.len() >= self.budget && !state.aborted {
            state = self.space.wait(state).expect("pipe lock poisoned");
        }
        if state.aborted {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "connection dropped mid-stream"));
        }
        state.buf.extend_from_slice(data);
        let first = !state.notified;
        state.notified = true;
        Ok(first)
    }

    /// Producer side: mark the stream complete. Returns whether the
    /// loop still needs a poke for this completion.
    pub fn finish(&self, result: Result<u64, ()>) -> bool {
        let mut state = self.state.lock().expect("pipe lock poisoned");
        state.done = Some(result);
        let first = !state.notified;
        state.notified = true;
        first
    }

    /// Loop side: take everything buffered (freeing producer budget)
    /// plus the completion state, and re-arm notifications.
    pub fn take(&self) -> (Vec<u8>, Option<Result<u64, ()>>) {
        let mut state = self.state.lock().expect("pipe lock poisoned");
        state.notified = false;
        let bytes = std::mem::take(&mut state.buf);
        if !bytes.is_empty() {
            self.space.notify_all();
        }
        (bytes, state.done)
    }

    /// Loop side: the connection died; unblock and fail the producer.
    pub fn abort(&self) {
        let mut state = self.state.lock().expect("pipe lock poisoned");
        state.aborted = true;
        self.space.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retroweb_sync::Arc;
    use std::time::Duration;

    #[test]
    fn blocks_producer_at_budget_and_take_frees_space() {
        let pipe = Arc::new(BodyPipe::new(http::CHUNK_FLUSH_BYTES));
        let budget = pipe.budget;
        // Fill to the brim without blocking.
        assert!(pipe.push(&vec![7u8; budget]).unwrap());
        let producer = {
            let pipe = Arc::clone(&pipe);
            std::thread::spawn(move || pipe.push(b"overflow").map(|_| ()))
        };
        // The producer must be parked, not completing.
        std::thread::sleep(Duration::from_millis(40));
        assert!(!producer.is_finished(), "producer ran past the budget");
        let (bytes, done) = pipe.take();
        assert_eq!(bytes.len(), budget);
        assert!(done.is_none());
        producer.join().unwrap().unwrap();
        let (bytes, _) = pipe.take();
        assert_eq!(bytes, b"overflow");
    }

    /// The regression the model checker generalises: a producer blocked
    /// on a full pipe must be released by `abort`, and must see the
    /// error — not push into a dead connection.
    #[test]
    fn abort_unblocks_budget_blocked_producer() {
        let pipe = Arc::new(BodyPipe::new(1));
        let filler = vec![0u8; pipe.budget];
        assert!(pipe.push(&filler).unwrap());
        let producer = {
            let pipe = Arc::clone(&pipe);
            std::thread::spawn(move || pipe.push(b"more"))
        };
        // Give the producer a moment to actually block on `space`; the
        // abort must wake it regardless of whether it has yet.
        std::thread::sleep(Duration::from_millis(20));
        pipe.abort();
        let err = producer.join().unwrap().expect_err("push after abort must fail");
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
    }

    /// Reader-dropped mid-stream: once aborted, every later push fails
    /// and nothing is buffered — the producer cannot stream into the
    /// void.
    #[test]
    fn push_after_abort_fails_and_buffers_nothing() {
        let pipe = BodyPipe::new(64);
        pipe.abort();
        assert!(pipe.push(b"late").is_err());
        let (bytes, done) = pipe.take();
        assert!(bytes.is_empty());
        assert_eq!(done, None);
    }

    /// `take` frees budget: a blocked producer resumes after a drain
    /// and the drained bytes arrive in order.
    #[test]
    fn take_releases_budget_and_preserves_order() {
        let pipe = Arc::new(BodyPipe::new(1));
        let budget = pipe.budget;
        assert!(pipe.push(&vec![b'a'; budget]).unwrap());
        let producer = {
            let pipe = Arc::clone(&pipe);
            std::thread::spawn(move || {
                pipe.push(b"b").unwrap();
                pipe.finish(Ok(1))
            })
        };
        let mut collected = Vec::new();
        let done = loop {
            let (bytes, done) = pipe.take();
            collected.extend_from_slice(&bytes);
            if let Some(done) = done {
                break done;
            }
            std::thread::yield_now();
        };
        // The producer's `finish` raced a drain, so the poke may or may
        // not have been needed — but the completion itself must land.
        producer.join().unwrap();
        assert_eq!(done, Ok(1));
        assert_eq!(collected.len(), budget + 1);
        assert_eq!(collected.last(), Some(&b'b'));
    }

    /// Notification coalescing: only the first push after a drain asks
    /// for a poke.
    #[test]
    fn pushes_coalesce_until_drained() {
        let pipe = BodyPipe::new(1024);
        assert!(pipe.push(b"one").unwrap());
        assert!(!pipe.push(b"two").unwrap());
        assert!(!pipe.finish(Ok(6)));
        let (bytes, done) = pipe.take();
        assert_eq!(bytes, b"onetwo");
        assert_eq!(done, Some(Ok(6)));
        // Drained: the next producer-side event needs a fresh poke.
        assert!(pipe.push(b"three").unwrap());
    }
}
