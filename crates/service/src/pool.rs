//! Fixed-size worker thread pool with a bounded job queue and a
//! draining shutdown, in the style of the scoped-thread parallel
//! extractor in `retrozilla::extract`: plain `std::sync` primitives, no
//! channel crates.
//!
//! - `submit` applies backpressure: it blocks while the queue is at
//!   capacity instead of growing it without bound.
//! - `shutdown` is graceful: queued jobs are still executed; workers
//!   exit only once the queue is empty.

use retroweb_sync::atomic::{AtomicUsize, Ordering};
use retroweb_sync::thread::JoinHandle;
use retroweb_sync::{Arc, Condvar, Mutex};
use std::collections::VecDeque;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<Job>,
    shutting_down: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    not_empty: Condvar,
    not_full: Condvar,
    /// Workers currently executing a job, plus its high-water mark —
    /// the gauge that shows whether a front end keeps the pool sized to
    /// *active* work (evented) or burns a worker per open socket
    /// (thread-per-connection).
    busy: AtomicUsize,
    busy_high_water: AtomicUsize,
}

/// The pool rejected a job because it is shutting down.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rejected;

pub struct ThreadPool {
    shared: Arc<Shared>,
    capacity: usize,
    threads: usize,
    /// Behind a mutex so `shutdown` can take `&self`: the pool is
    /// shared (`Arc`) between the acceptor and the metrics endpoint.
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl ThreadPool {
    /// `threads` workers over a queue of at most `queue_capacity` waiting
    /// jobs (both clamped to ≥ 1).
    pub fn new(threads: usize, queue_capacity: usize) -> ThreadPool {
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState { queue: VecDeque::new(), shutting_down: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            busy: AtomicUsize::new(0),
            busy_high_water: AtomicUsize::new(0),
        });
        let threads = threads.max(1);
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                retroweb_sync::thread::Builder::new()
                    .name(format!("retroweb-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        ThreadPool {
            shared,
            capacity: queue_capacity.max(1),
            threads,
            workers: Mutex::new(workers),
        }
    }

    /// Worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Workers executing a job right now.
    pub fn busy(&self) -> usize {
        self.shared.busy.load(Ordering::Relaxed) // sync-lint: counter
    }

    /// Most workers ever concurrently busy since the pool started.
    pub fn busy_high_water(&self) -> usize {
        self.shared.busy_high_water.load(Ordering::Relaxed) // sync-lint: counter
    }

    /// Enqueue a job, blocking while the queue is full. Fails only once
    /// shutdown has begun.
    pub fn submit(&self, job: Job) -> Result<(), Rejected> {
        let mut state = self.shared.state.lock().expect("pool lock poisoned");
        while state.queue.len() >= self.capacity && !state.shutting_down {
            state = self.shared.not_full.wait(state).expect("pool lock poisoned");
        }
        if state.shutting_down {
            return Err(Rejected);
        }
        state.queue.push_back(job);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Jobs currently waiting (not counting ones being executed).
    pub fn queued(&self) -> usize {
        self.shared.state.lock().expect("pool lock poisoned").queue.len()
    }

    /// Begin shutdown, let workers drain the queue, and join them.
    /// Idempotent: a second call finds no workers left to join.
    pub fn shutdown(&self) {
        {
            let mut state = self.shared.state.lock().expect("pool lock poisoned");
            state.shutting_down = true;
            self.shared.not_empty.notify_all();
            self.shared.not_full.notify_all();
        }
        let workers: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.workers.lock().expect("pool lock poisoned"));
        for worker in workers {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool lock poisoned");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    shared.not_full.notify_one();
                    break Some(job);
                }
                if state.shutting_down {
                    break None;
                }
                state = shared.not_empty.wait(state).expect("pool lock poisoned");
            }
        };
        match job {
            // A panicking job must not take its worker down with it: a
            // dead worker is never respawned, and a fully dead pool
            // leaves `submit` blocked on `not_full` forever.
            Some(job) => {
                let busy = shared.busy.fetch_add(1, Ordering::Relaxed) + 1; // sync-lint: counter
                shared.busy_high_water.fetch_max(busy, Ordering::Relaxed); // sync-lint: counter
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                shared.busy.fetch_sub(1, Ordering::Relaxed); // sync-lint: counter
            }
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(4, 8);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let done = Arc::clone(&done);
            pool.submit(Box::new(move || {
                done.fetch_add(1, Ordering::SeqCst);
            }))
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        // One slow worker; everything else queues. Shutdown must still
        // run every queued job.
        let pool = ThreadPool::new(1, 64);
        let done = Arc::new(AtomicUsize::new(0));
        for i in 0..20 {
            let done = Arc::clone(&done);
            pool.submit(Box::new(move || {
                if i == 0 {
                    std::thread::sleep(Duration::from_millis(50));
                }
                done.fetch_add(1, Ordering::SeqCst);
            }))
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn panicking_job_does_not_kill_its_worker() {
        let pool = ThreadPool::new(1, 8);
        let done = Arc::new(AtomicUsize::new(0));
        for i in 0..10 {
            let done = Arc::clone(&done);
            pool.submit(Box::new(move || {
                if i % 2 == 0 {
                    panic!("job {i} exploded");
                }
                done.fetch_add(1, Ordering::SeqCst);
            }))
            .unwrap();
        }
        // The single worker survived five panics and ran the other five.
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn busy_gauges_track_peak_concurrency() {
        let pool = ThreadPool::new(3, 8);
        assert_eq!(pool.threads(), 3);
        // Three jobs rendezvous on a barrier, so all three workers must
        // be busy at once for any of them to finish.
        let barrier = Arc::new(std::sync::Barrier::new(3));
        for _ in 0..3 {
            let barrier = Arc::clone(&barrier);
            pool.submit(Box::new(move || {
                barrier.wait();
            }))
            .unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while pool.busy_high_water() < 3 {
            assert!(std::time::Instant::now() < deadline, "high-water mark never reached 3");
            std::thread::sleep(Duration::from_millis(1));
        }
        pool.shutdown();
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let pool = ThreadPool::new(2, 4);
        {
            let mut state = pool.shared.state.lock().unwrap();
            state.shutting_down = true;
        }
        assert_eq!(pool.submit(Box::new(|| {})), Err(Rejected));
        pool.shutdown();
    }

    #[test]
    fn bounded_queue_applies_backpressure() {
        // Capacity 1, one worker blocked on a gate: while the gate is
        // shut nothing completes; submitters past capacity block rather
        // than growing the queue, and everything runs once released.
        let pool = ThreadPool::new(1, 1);
        let done = Arc::new(AtomicUsize::new(0));
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        std::thread::scope(|scope| {
            {
                let gate = Arc::clone(&gate);
                let done = Arc::clone(&done);
                pool.submit(Box::new(move || {
                    let (lock, cv) = &*gate;
                    let mut open = lock.lock().unwrap();
                    while !*open {
                        open = cv.wait(open).unwrap();
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                }))
                .unwrap();
            }
            let pool_ref = &pool;
            let done_ref = Arc::clone(&done);
            scope.spawn(move || {
                for _ in 0..3 {
                    let done = Arc::clone(&done_ref);
                    pool_ref
                        .submit(Box::new(move || {
                            done.fetch_add(1, Ordering::SeqCst);
                        }))
                        .unwrap();
                }
            });
            std::thread::sleep(Duration::from_millis(30));
            // Nothing can have finished while the gate is shut, and the
            // bounded queue holds at most one waiting job.
            assert_eq!(done.load(Ordering::SeqCst), 0);
            assert!(pool.queued() <= 1, "queue grew past capacity: {}", pool.queued());
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        });
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 4);
    }

    /// Shutdown racing a submitter that is blocked on a full queue:
    /// the submitter must terminate either way — either its job got the
    /// freed slot and ran, or it observed shutdown and was rejected.
    /// The model checker walks every interleaving of this race in
    /// `tests/conc_model.rs`; this pins the std behaviour.
    #[test]
    fn shutdown_races_submitter_blocked_on_full_queue() {
        let pool = ThreadPool::new(1, 1);
        let done = Arc::new(AtomicUsize::new(0));
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        // Occupy the lone worker behind the gate, then fill the queue.
        {
            let gate = Arc::clone(&gate);
            let done = Arc::clone(&done);
            pool.submit(Box::new(move || {
                let (lock, cv) = &*gate;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
                done.fetch_add(1, Ordering::SeqCst);
            }))
            .unwrap();
        }
        {
            let done = Arc::clone(&done);
            pool.submit(Box::new(move || {
                done.fetch_add(1, Ordering::SeqCst);
            }))
            .unwrap();
        }
        std::thread::scope(|scope| {
            let pool_ref = &pool;
            let done_ref = Arc::clone(&done);
            let racer = scope.spawn(move || {
                let done = Arc::clone(&done_ref);
                pool_ref.submit(Box::new(move || {
                    done.fetch_add(1, Ordering::SeqCst);
                }))
            });
            // Let the racer park on `not_full`, then release the worker
            // and begin shutdown — the racer either grabs the freed slot
            // or wakes to `shutting_down`.
            std::thread::sleep(Duration::from_millis(20));
            {
                let (lock, cv) = &*gate;
                *lock.lock().unwrap() = true;
                cv.notify_all();
            }
            pool.shutdown();
            let accepted = racer.join().unwrap().is_ok();
            assert_eq!(
                done.load(Ordering::SeqCst),
                2 + usize::from(accepted),
                "an accepted job was lost (or a rejected one ran)"
            );
        });
    }
}
