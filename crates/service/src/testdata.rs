//! Canned demo cluster and pages shared by the `--self-test` smoke mode,
//! the loopback end-to-end tests, the facade example and the throughput
//! bench. Everything goes through the repository JSON shape, exactly as
//! a `PUT /clusters/{name}` body would.

use retrozilla::{ClusterRules, RuleRepository};

/// Name of the demo cluster.
pub const DEMO_CLUSTER: &str = "demo-movies";

/// The demo cluster's repository JSON: three rules covering the paper's
/// property matrix (mandatory single-valued, optional with a
/// post-processing chain, mandatory multivalued).
pub fn demo_cluster_json() -> String {
    r#"{
  "cluster": "demo-movies",
  "page-element": "demo-movie",
  "rules": [
    {
      "name": "title",
      "optionality": "mandatory",
      "multiplicity": "single-valued",
      "format": "text",
      "locations": ["/HTML[1]/BODY[1]/H1[1]/text()"],
      "post": []
    },
    {
      "name": "runtime",
      "optionality": "optional",
      "multiplicity": "single-valued",
      "format": "text",
      "locations": ["//TABLE[1]/TR[1]/TD[2]/text()"],
      "post": [{"kind": "strip-suffix", "value": "min"}]
    },
    {
      "name": "genre",
      "optionality": "mandatory",
      "multiplicity": "multivalued",
      "format": "text",
      "locations": ["//UL[1]/LI[position() >= 1]/text()"],
      "post": []
    }
  ]
}"#
    .to_string()
}

/// A revised rule set for the same cluster — the hot-reload payload. The
/// page element is renamed and the runtime post-processing dropped, so
/// reloaded output is trivially distinguishable from v1 output.
pub fn updated_cluster_json() -> String {
    r#"{
  "cluster": "demo-movies",
  "page-element": "demo-film",
  "rules": [
    {
      "name": "title",
      "optionality": "mandatory",
      "multiplicity": "single-valued",
      "format": "text",
      "locations": ["/HTML[1]/BODY[1]/H1[1]/text()"],
      "post": []
    },
    {
      "name": "runtime",
      "optionality": "optional",
      "multiplicity": "single-valued",
      "format": "text",
      "locations": ["//TABLE[1]/TR[1]/TD[2]/text()"],
      "post": []
    }
  ]
}"#
    .to_string()
}

/// Parse one of the JSON documents above into `ClusterRules`.
pub fn cluster_from(json_text: &str) -> ClusterRules {
    let json = retroweb_json::parse(json_text).expect("testdata JSON parses");
    ClusterRules::from_json(&json).expect("testdata cluster parses")
}

/// A repository pre-loaded with the demo cluster (v1 rules).
pub fn demo_repository() -> RuleRepository {
    let repo = RuleRepository::new();
    repo.record(cluster_from(&demo_cluster_json()));
    repo
}

/// One demo page: `(uri, html)`. Pages vary by index so batch responses
/// exercise real per-page differences.
pub fn demo_page(i: usize) -> (String, String) {
    let genres: &[&str] = match i % 3 {
        0 => &["Drama"],
        1 => &["Drama", "Comedy"],
        _ => &["Sci-Fi", "Thriller", "Noir"],
    };
    let items: String = genres.iter().map(|g| format!("<li>{g}</li>")).collect();
    let html = format!(
        "<html><body><h1>Movie {i}</h1>\
         <table><tr><td>Runtime:</td><td> {} min </td></tr></table>\
         <ul>{items}</ul></body></html>",
        90 + (i % 60),
    );
    (format!("http://demo/movies/{i}"), html)
}

/// The first `n` demo pages.
pub fn demo_pages(n: usize) -> Vec<(String, String)> {
    (0..n).map(demo_page).collect()
}

/// A drifted page: the site redesign dropped the `<h1>` title, so the
/// mandatory `title` rule fails (§7 failure detection).
pub fn drifted_page(i: usize) -> (String, String) {
    let html = format!(
        "<html><body><div class=\"hero\">Movie {i}</div>\
         <table><tr><td>Runtime:</td><td> {} min </td></tr></table>\
         <ul><li>Drama</li></ul></body></html>",
        90 + (i % 60),
    );
    (format!("http://demo/movies/{i}"), html)
}

/// JSON body for the batch and check endpoints: `[{"uri", "html"}, …]`.
pub fn pages_json(pages: &[(String, String)]) -> String {
    let items: Vec<retroweb_json::Json> = pages
        .iter()
        .map(|(uri, html)| {
            retroweb_json::Json::object(vec![
                ("uri".to_string(), retroweb_json::Json::from(uri.as_str())),
                ("html".to_string(), retroweb_json::Json::from(html.as_str())),
            ])
        })
        .collect();
    retroweb_json::Json::Array(items).to_string_compact()
}

/// The XML a direct (in-process) extraction of `pages` produces with the
/// given rules — the byte-identical reference for served responses.
pub fn direct_extract_xml(rules: &ClusterRules, pages: &[(String, String)]) -> String {
    let parsed: Vec<(String, retroweb_html::Document)> =
        pages.iter().map(|(uri, html)| (uri.clone(), retroweb_html::parse(html))).collect();
    retrozilla::extract_cluster(rules, &parsed).xml.to_string_with(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_cluster_parses_and_extracts() {
        let rules = cluster_from(&demo_cluster_json());
        assert_eq!(rules.cluster, DEMO_CLUSTER);
        assert_eq!(rules.rules.len(), 3);
        let xml = direct_extract_xml(&rules, &demo_pages(3));
        assert!(xml.contains("<title>Movie 0</title>"), "{xml}");
        assert!(xml.contains("<runtime>90</runtime>"), "{xml}");
        assert!(xml.contains("<genre>Comedy</genre>"), "{xml}");
    }

    #[test]
    fn updated_cluster_changes_page_element() {
        let rules = cluster_from(&updated_cluster_json());
        let xml = direct_extract_xml(&rules, &demo_pages(1));
        assert!(xml.contains("<demo-film"), "{xml}");
        assert!(xml.contains("<runtime>90 min</runtime>"), "{xml}");
        assert!(!xml.contains("<genre>"), "{xml}");
    }

    #[test]
    fn drifted_page_fails_title() {
        let rules = cluster_from(&demo_cluster_json());
        let (uri, html) = drifted_page(0);
        let doc = retroweb_html::parse(&html);
        let mut failures = Vec::new();
        retrozilla::extract_page_compiled(&rules.compile(), &uri, &doc, &mut failures);
        assert!(failures.iter().any(|f| f.component == "title"), "{failures:?}");
    }
}
