//! Model-checked concurrency suite for the service crate: the
//! streaming `BodyPipe` and the worker `ThreadPool`, explored under
//! the `retroweb_sync` checker.
//!
//! Built only under `RUSTFLAGS="--cfg conc_check"`; see
//! `docs/CONCURRENCY.md` for the invariants and how to replay a
//! failing schedule.
#![cfg(conc_check)]

use retroweb_service::pipe::BodyPipe;
use retroweb_service::pool::ThreadPool;
use retroweb_sync::atomic::{AtomicUsize, Ordering};
use retroweb_sync::check::{model_with, Config};
use retroweb_sync::{thread, Arc};

/// The producer always unblocks when the connection dies: a producer
/// fills the pipe past budget while another thread aborts and the loop
/// side drains — on every interleaving the execution terminates (a
/// producer left waiting on `space` would be reported as a deadlock),
/// and any bytes the producer was told were accepted are actually
/// delivered by the drains.
#[test]
fn pipe_abort_always_unblocks_producer_and_loses_no_accepted_bytes() {
    let explored = model_with(Config::dfs(2), || {
        let pipe = Arc::new(BodyPipe::new(1));
        let budget = pipe.budget();
        let producer = {
            let pipe = Arc::clone(&pipe);
            thread::spawn(move || {
                if pipe.push(&vec![b'f'; budget]).is_err() {
                    return false;
                }
                // The pipe is now at budget: this push blocks until a
                // drain frees space or the abort fails it.
                pipe.push(b"x").is_ok()
            })
        };
        let aborter = {
            let pipe = Arc::clone(&pipe);
            thread::spawn(move || pipe.abort())
        };
        let (drained_early, _) = pipe.take();
        aborter.join().unwrap();
        let second_push_accepted = producer.join().unwrap();
        let (drained_late, _) = pipe.take();
        if second_push_accepted {
            let mut all = drained_early;
            all.extend_from_slice(&drained_late);
            assert!(all.ends_with(b"x"), "accepted byte vanished");
        }
    });
    assert!(!explored.truncated);
    assert!(explored.iterations > 1, "expected multiple interleavings");
}

/// `finish` after an abort still terminates and never un-aborts the
/// pipe: a late producer can always run its completion path without
/// blocking, and the loop side observes a consistent (done, aborted)
/// state on every schedule.
#[test]
fn pipe_finish_and_abort_commute_safely() {
    let explored = model_with(Config::dfs(2), || {
        let pipe = Arc::new(BodyPipe::new(1));
        let finisher = {
            let pipe = Arc::clone(&pipe);
            thread::spawn(move || {
                pipe.finish(Err(()));
            })
        };
        pipe.abort();
        finisher.join().unwrap();
        let (_, done) = pipe.take();
        assert_eq!(done, Some(Err(())), "completion lost");
        // Aborted stays aborted regardless of order.
        assert!(pipe.push(b"late").is_err(), "push succeeded on an aborted pipe");
    });
    assert!(!explored.truncated);
}

/// Graceful shutdown loses no queued job: two submitters race a
/// one-worker pool with a one-slot queue (so `submit` itself blocks on
/// `not_full`), then shut down. Every interleaving must run both jobs —
/// a worker that misses a wakeup or a shutdown that drops a queued job
/// shows up either as a deadlock or as the final assert firing.
#[test]
fn pool_shutdown_loses_no_queued_job() {
    let explored = model_with(Config::dfs(2), || {
        let pool = Arc::new(ThreadPool::new(1, 1));
        let done = Arc::new(AtomicUsize::new(0));
        let submitter = {
            let pool = Arc::clone(&pool);
            let done = Arc::clone(&done);
            thread::spawn(move || {
                let done = Arc::clone(&done);
                pool.submit(Box::new(move || {
                    done.fetch_add(1, Ordering::SeqCst);
                }))
                .unwrap();
            })
        };
        {
            let done = Arc::clone(&done);
            pool.submit(Box::new(move || {
                done.fetch_add(1, Ordering::SeqCst);
            }))
            .unwrap();
        }
        submitter.join().unwrap();
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 2, "a queued job was lost in shutdown");
    });
    assert!(!explored.truncated);
    assert!(explored.iterations > 1, "expected multiple interleavings");
}
