//! Loopback end-to-end tests for the evented (`poll(2)`-loop) front
//! end. The contract under test: every response is **byte-identical**
//! to the worker-pool front end's (both run the same encoders), with
//! the evented loop adding pipelining, admission shedding, slow-client
//! deadlines, and a draining shutdown on top.
#![cfg(unix)]

use retroweb_service::testdata::{
    self, demo_pages, demo_repository, direct_extract_xml, pages_json, DEMO_CLUSTER,
};
use retroweb_service::{request_once, Client, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn evented_config() -> ServerConfig {
    ServerConfig { evented: true, ..ServerConfig::default() }
}

fn start_server(config: ServerConfig) -> retroweb_service::ServerHandle {
    Server::bind(demo_repository(), config).expect("bind").start().expect("start")
}

/// Send one raw request and read the complete raw response bytes (to
/// EOF — callers pass `connection: close` requests).
fn raw_response(addr: std::net::SocketAddr, request: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request).expect("write");
    let mut out = Vec::new();
    stream.read_to_end(&mut out).expect("read");
    out
}

/// The headline guarantee: the same raw requests produce the same raw
/// bytes — headers, framing and all — from both front ends. Covers a
/// full response, a chunked streaming batch, an NDJSON stream, and an
/// error.
#[test]
fn responses_byte_identical_to_worker_pool_mode() {
    let evented = start_server(evented_config());
    let blocking = start_server(ServerConfig::default());

    let pages = demo_pages(24);
    let body = pages_json(&pages);
    let (uri, html) = testdata::demo_page(1);
    let requests: Vec<Vec<u8>> = vec![
        b"GET /healthz HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n".to_vec(),
        format!(
            "POST /extract/{DEMO_CLUSTER} HTTP/1.1\r\nhost: t\r\nx-page-uri: {uri}\r\n\
             connection: close\r\ncontent-length: {}\r\n\r\n{html}",
            html.len()
        )
        .into_bytes(),
        format!(
            "POST /extract/{DEMO_CLUSTER}/batch?threads=3 HTTP/1.1\r\nhost: t\r\n\
             connection: close\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )
        .into_bytes(),
        format!(
            "POST /extract/{DEMO_CLUSTER}/batch HTTP/1.1\r\nhost: t\r\naccept: application/x-ndjson\r\n\
             connection: close\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )
        .into_bytes(),
        b"POST /extract/no-such-cluster HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\
          content-length: 4\r\n\r\nhtml"
            .to_vec(),
        b"GET /clusters HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n".to_vec(),
    ];
    for (i, request) in requests.iter().enumerate() {
        let from_evented = raw_response(evented.addr(), request);
        let from_blocking = raw_response(blocking.addr(), request);
        assert!(
            from_evented == from_blocking,
            "request {i}: evented and worker-pool responses differ\n\
             evented:  {:?}\nblocking: {:?}",
            String::from_utf8_lossy(&from_evented),
            String::from_utf8_lossy(&from_blocking),
        );
        assert!(!from_evented.is_empty(), "request {i}: empty response");
    }
    // The chunked batch really was chunk-framed and decodes to the
    // direct pipeline's bytes through the shared client.
    let want = direct_extract_xml(&testdata::cluster_from(&testdata::demo_cluster_json()), &pages);
    let mut client = Client::connect(evented.addr()).expect("connect");
    let resp = client
        .request("POST", &format!("/extract/{DEMO_CLUSTER}/batch"), &[], body.as_bytes())
        .expect("batch");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("transfer-encoding"), Some("chunked"));
    assert_eq!(resp.body_utf8(), want);
    // Keep-alive survives a chunked stream under the evented writer.
    let resp = client.request("GET", "/healthz", &[], b"").expect("keep-alive");
    assert_eq!(resp.status, 200);

    evented.shutdown();
    blocking.shutdown();
}

/// Satellite: HTTP/1.1 pipelining. N requests written in one TCP
/// segment produce N in-order responses on one connection, and the
/// bytes equal N sequential keep-alive exchanges.
#[test]
fn pipelined_requests_answer_in_order_and_match_sequential() {
    let handle = start_server(evented_config());
    let addr = handle.addr();

    const N: usize = 5;
    let one = b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n";
    let mut burst = Vec::new();
    for _ in 0..N {
        burst.extend_from_slice(one);
    }

    // One segment, N requests. Close afterwards so read_to_end ends.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(&burst).expect("pipelined burst");
    stream.shutdown(std::net::Shutdown::Write).expect("half-close");
    let mut pipelined = Vec::new();
    stream.read_to_end(&mut pipelined).expect("responses");

    // Sequential keep-alive reference on a second connection.
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut sequential = Vec::new();
    for _ in 0..N {
        stream.write_all(one).expect("sequential request");
        // Keep-alive responses carry content-length; read exactly one.
        let mut resp = Vec::new();
        let mut byte = [0u8; 1];
        while !resp.ends_with(b"\r\n\r\n") {
            stream.read_exact(&mut byte).expect("header byte");
            resp.push(byte[0]);
        }
        let head = String::from_utf8_lossy(&resp).to_lowercase();
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("content-length:"))
            .expect("content-length")
            .trim()
            .parse()
            .expect("length");
        let mut body = vec![0u8; len];
        stream.read_exact(&mut body).expect("body");
        resp.extend_from_slice(&body);
        sequential.extend_from_slice(&resp);
    }
    drop(stream);

    assert_eq!(
        String::from_utf8_lossy(&pipelined),
        String::from_utf8_lossy(&sequential),
        "pipelined burst must be byte-identical to sequential keep-alive"
    );
    let starts = pipelined.windows(4).filter(|w| w == b"HTTP").count();
    assert_eq!(starts, N, "expected {N} responses in the pipelined burst");

    // The loop counted the burst's follow-on requests as pipelined.
    let resp = request_once(addr, "GET", "/metrics", &[], b"").expect("metrics");
    let metrics = resp.body_json().expect("metrics json");
    let pipelined_total = metrics
        .get("evented")
        .and_then(|e| e.get("pipelined"))
        .and_then(|p| p.as_u64())
        .unwrap_or(0);
    assert!(pipelined_total >= (N as u64) - 1, "pipelined gauge: {metrics}");
    handle.shutdown();
}

/// Satellite: oversized request heads are answered `431` and closed —
/// in both front ends, with identical bytes.
#[test]
fn oversized_head_gets_431_in_both_modes() {
    let evented = start_server(evented_config());
    let blocking = start_server(ServerConfig::default());

    // 96 KiB of headers against a 64 KiB cap, sent as complete lines so
    // the rejection is about total size, not a torn line.
    let mut request = b"GET /healthz HTTP/1.1\r\nhost: t\r\n".to_vec();
    let filler = format!("x-filler: {}\r\n", "y".repeat(1000));
    while request.len() < 96 * 1024 {
        request.extend_from_slice(filler.as_bytes());
    }
    request.extend_from_slice(b"\r\n");

    let check = |addr: std::net::SocketAddr, label: &str| -> Vec<u8> {
        let mut stream = TcpStream::connect(addr).expect("connect");
        // The server may answer (and close) before the whole oversized
        // head is written; a write error past that point is expected.
        let _ = stream.write_all(&request);
        let mut resp = Vec::new();
        stream.read_to_end(&mut resp).unwrap_or_default();
        let text = String::from_utf8_lossy(&resp).to_string();
        assert!(text.starts_with("HTTP/1.1 431"), "{label}: {text}");
        assert!(text.contains("connection: close"), "{label}: {text}");
        resp
    };
    let from_evented = check(evented.addr(), "evented");
    let from_blocking = check(blocking.addr(), "worker-pool");
    assert_eq!(from_evented, from_blocking, "431 responses must match across front ends");

    // Both servers still serve normal traffic afterwards.
    for handle in [&evented, &blocking] {
        let resp = request_once(handle.addr(), "GET", "/healthz", &[], b"").expect("healthz");
        assert_eq!(resp.status, 200);
    }
    evented.shutdown();
    blocking.shutdown();
}

/// Satellite: an HTTP/1.0 peer gets the streamed batch EOF-delimited —
/// unframed bytes, `connection: close`, and an orderly FIN once the
/// write queue drains (read_to_end returning Ok proves FIN, not RST).
#[test]
fn http10_streaming_ends_with_orderly_fin() {
    let handle = start_server(evented_config());
    let addr = handle.addr();
    let pages = demo_pages(32);
    let body = pages_json(&pages);
    let want = direct_extract_xml(&testdata::cluster_from(&testdata::demo_cluster_json()), &pages);

    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "POST /extract/{DEMO_CLUSTER}/batch HTTP/1.0\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("head");
    stream.write_all(body.as_bytes()).expect("body");
    let mut raw = Vec::new();
    // An RST mid-body or a truncating close errors here (or cuts the
    // body short, caught below).
    stream.read_to_end(&mut raw).expect("EOF-delimited body must end in a clean FIN");
    let text = String::from_utf8_lossy(&raw);
    let head_end = text.find("\r\n\r\n").expect("response head") + 4;
    assert!(text.starts_with("HTTP/1.1 200"), "{text}");
    assert!(text[..head_end].contains("connection: close"), "{text}");
    assert!(!text[..head_end].contains("transfer-encoding"), "1.0 peer must not see chunking");
    assert_eq!(&text[head_end..], want, "EOF-delimited body truncated or reordered");
    handle.shutdown();
}

/// Admission control: past `max_conns` open connections, arrivals are
/// shed with `503` + `connection: close` while established connections
/// keep working.
#[test]
fn connections_past_cap_are_shed_with_503() {
    let handle = start_server(ServerConfig { max_conns: 2, ..evented_config() });
    let addr = handle.addr();

    // Fill the cap with two live keep-alive connections.
    let mut held = Vec::new();
    for _ in 0..2 {
        let mut client = Client::connect(addr).expect("connect");
        let resp = client.request("GET", "/healthz", &[], b"").expect("held conn request");
        assert_eq!(resp.status, 200);
        held.push(client);
    }
    // The third arrival is shed.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n").ok();
    stream.shutdown(std::net::Shutdown::Write).ok();
    let mut resp = Vec::new();
    stream.read_to_end(&mut resp).expect("shed response");
    let text = String::from_utf8_lossy(&resp);
    assert!(text.starts_with("HTTP/1.1 503"), "expected shed 503: {text}");
    assert!(text.contains("connection: close"), "{text}");

    // Held connections still serve; the shed is visible on /metrics.
    let resp = held[0].request("GET", "/metrics", &[], b"").expect("metrics");
    assert_eq!(resp.status, 200);
    let metrics = resp.body_json().expect("metrics json");
    let evented = metrics.get("evented").expect("evented section");
    assert_eq!(evented.get("shed").and_then(|s| s.as_u64()), Some(1), "{metrics}");
    assert_eq!(evented.get("open").and_then(|o| o.as_u64()), Some(2), "{metrics}");
    drop(held);
    handle.shutdown();
}

/// Slow-client defence: a connection that dribbles a partial request
/// head is answered `408` at the header deadline; an idle keep-alive
/// connection is closed quietly at the idle deadline.
#[test]
fn slowloris_gets_408_and_idle_connections_are_reaped() {
    let handle = start_server(ServerConfig {
        header_timeout: Duration::from_millis(150),
        idle_timeout: Duration::from_millis(300),
        ..evented_config()
    });
    let addr = handle.addr();

    // Partial head, then silence: the server must answer 408 and close
    // rather than hold the socket forever.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(b"GET /healthz HT").expect("partial head");
    let mut resp = Vec::new();
    stream.read_to_end(&mut resp).expect("408 then close");
    let text = String::from_utf8_lossy(&resp);
    assert!(text.starts_with("HTTP/1.1 408"), "expected 408: {text}");
    assert!(text.contains("connection: close"), "{text}");

    // A completed exchange moves the connection to the (longer) idle
    // deadline; expiry closes it with a bare FIN, no error response.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n").expect("request");
    std::thread::sleep(Duration::from_millis(700));
    let mut leftover = Vec::new();
    stream.read_to_end(&mut leftover).expect("response then idle close");
    let text = String::from_utf8_lossy(&leftover);
    assert!(text.starts_with("HTTP/1.1 200"), "{text}");
    assert!(!text.contains("408"), "idle reap must not produce an error response: {text}");

    let resp = request_once(addr, "GET", "/metrics", &[], b"").expect("metrics");
    let metrics = resp.body_json().expect("metrics json");
    let timed_out = metrics
        .get("evented")
        .and_then(|e| e.get("timed_out"))
        .and_then(|t| t.as_u64())
        .unwrap_or(0);
    assert!(timed_out >= 1, "header timeout must count: {metrics}");
    handle.shutdown();
}

/// `Expect: 100-continue` works through the evented loop: interim nod
/// first, then the real response, on one connection.
#[test]
fn expect_continue_gets_interim_nod() {
    let handle = start_server(evented_config());
    let addr = handle.addr();
    let mut stream = TcpStream::connect(addr).expect("connect");
    let body = b"<html><body>x</body></html>";
    let head = format!(
        "POST /extract/{DEMO_CLUSTER} HTTP/1.1\r\nexpect: 100-continue\r\n\
         connection: close\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("head");
    let mut first = [0u8; 25];
    stream.read_exact(&mut first).expect("interim response");
    assert_eq!(&first, b"HTTP/1.1 100 Continue\r\n\r\n");
    stream.write_all(body).expect("body");
    let mut rest = String::new();
    stream.read_to_string(&mut rest).expect("final response");
    assert!(rest.starts_with("HTTP/1.1 200"), "{rest}");
    handle.shutdown();
}

/// Hot rule reload holds under the evented front end: a PUT on one
/// connection is observed by the next extraction on another.
#[test]
fn hot_reload_is_observed_across_connections() {
    let handle = start_server(evented_config());
    let addr = handle.addr();
    let pages = demo_pages(8);
    let body = pages_json(&pages);
    let want_v1 =
        direct_extract_xml(&testdata::cluster_from(&testdata::demo_cluster_json()), &pages);
    let want_v2 =
        direct_extract_xml(&testdata::cluster_from(&testdata::updated_cluster_json()), &pages);
    assert_ne!(want_v1, want_v2);

    let mut client = Client::connect(addr).expect("connect");
    let resp = client
        .request("POST", &format!("/extract/{DEMO_CLUSTER}/batch"), &[], body.as_bytes())
        .expect("v1 batch");
    assert_eq!(resp.body_utf8(), want_v1);
    let resp = request_once(
        addr,
        "PUT",
        &format!("/clusters/{DEMO_CLUSTER}"),
        &[],
        testdata::updated_cluster_json().as_bytes(),
    )
    .expect("reload");
    assert_eq!(resp.status, 200);
    // Same keep-alive connection as v1: the reload applies without
    // reconnecting.
    let resp = client
        .request("POST", &format!("/extract/{DEMO_CLUSTER}/batch"), &[], body.as_bytes())
        .expect("v2 batch");
    assert_eq!(resp.body_utf8(), want_v2);
    handle.shutdown();
}

/// Shutdown drains: requests in flight when shutdown begins still get
/// complete, correct responses through the evented loop.
#[test]
fn shutdown_drains_in_flight_requests() {
    let handle = start_server(ServerConfig { threads: 2, ..evented_config() });
    let addr = handle.addr();
    let pages = demo_pages(8);
    let body = std::sync::Arc::new(pages_json(&pages));
    let want = direct_extract_xml(&testdata::cluster_from(&testdata::demo_cluster_json()), &pages);

    const BURST: usize = 8;
    let mut clients = Vec::new();
    for _ in 0..BURST {
        let body = std::sync::Arc::clone(&body);
        clients.push(std::thread::spawn(move || {
            request_once(
                addr,
                "POST",
                &format!("/extract/{DEMO_CLUSTER}/batch"),
                &[],
                body.as_bytes(),
            )
        }));
    }
    std::thread::sleep(Duration::from_millis(100));
    handle.shutdown();
    let mut served = 0;
    for client in clients {
        let resp = client.join().expect("client thread");
        // A request that raced the listener teardown may have been
        // refused outright — but anything *answered* must be complete.
        if let Ok(resp) = resp {
            assert_eq!(resp.status, 200);
            assert_eq!(resp.body_utf8(), want);
            served += 1;
        }
    }
    assert!(served >= 1, "shutdown answered nothing");
}

/// The evented gauges on `/metrics` reflect the live connection table.
#[test]
fn metrics_report_evented_gauges() {
    let handle = start_server(evented_config());
    let addr = handle.addr();
    let mut held = Client::connect(addr).expect("connect");
    let resp = held.request("GET", "/healthz", &[], b"").expect("warm-up");
    assert_eq!(resp.status, 200);

    let resp = held.request("GET", "/metrics", &[], b"").expect("metrics");
    let metrics = resp.body_json().expect("metrics json");
    let evented = metrics.get("evented").expect("evented section");
    // This connection is open and actively being served; the gauge
    // includes it.
    assert!(evented.get("open").and_then(|o| o.as_u64()) >= Some(1), "{metrics}");
    assert!(evented.get("accepted").and_then(|a| a.as_u64()) >= Some(1), "{metrics}");
    // The worker section rides along once the pool is wired in.
    let workers = metrics.get("workers").expect("workers section");
    assert_eq!(workers.get("threads").and_then(|t| t.as_u64()), Some(4), "{metrics}");
    drop(held);
    handle.shutdown();
}
