//! Loopback end-to-end tests: concurrent clients over real TCP, served
//! output held byte-identical to direct `extract_cluster` output, hot
//! rule reload mid-run, and a draining shutdown.

use retroweb_service::testdata::{
    self, demo_pages, demo_repository, direct_extract_xml, drifted_page, pages_json, DEMO_CLUSTER,
};
use retroweb_service::{request_once, Client, Server, ServerConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn start_server(config: ServerConfig) -> retroweb_service::ServerHandle {
    Server::bind(demo_repository(), config).expect("bind").start().expect("start")
}

/// The acceptance-criteria test: ≥ 4 concurrent clients hammering
/// `/extract/{cluster}/batch`, every response byte-identical to the
/// direct extraction for whichever rule version was live, a mid-run
/// `PUT /clusters/{name}` hot reload observed by every later request
/// with nothing dropped, and a shutdown that drains cleanly.
#[test]
fn concurrent_batch_extraction_with_hot_reload() {
    let handle = start_server(ServerConfig { threads: 6, ..Default::default() });
    let addr = handle.addr();

    let pages = demo_pages(16);
    let body = pages_json(&pages);
    let want_v1 =
        direct_extract_xml(&testdata::cluster_from(&testdata::demo_cluster_json()), &pages);
    let want_v2 =
        direct_extract_xml(&testdata::cluster_from(&testdata::updated_cluster_json()), &pages);
    assert_ne!(want_v1, want_v2, "reload must be observable");

    // Set once the PUT response has come back: any request *sent* after
    // this point must see the v2 rules.
    let reloaded = Arc::new(AtomicBool::new(false));
    // Completed requests across all clients; gates the reload so it
    // provably lands mid-run.
    let completed = Arc::new(std::sync::atomic::AtomicUsize::new(0));

    const CLIENTS: usize = 5;
    const MIN_REQUESTS_PER_CLIENT: usize = 6;
    std::thread::scope(|scope| {
        let mut clients = Vec::new();
        for c in 0..CLIENTS {
            let body = body.as_str();
            let want_v1 = want_v1.as_str();
            let want_v2 = want_v2.as_str();
            let reloaded = Arc::clone(&reloaded);
            let completed = Arc::clone(&completed);
            clients.push(scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut saw_v2 = false;
                let mut requests = 0usize;
                // Run until this client has both done its share of
                // traffic and observed the reload.
                while !(saw_v2 && requests >= MIN_REQUESTS_PER_CLIENT) {
                    requests += 1;
                    assert!(requests <= 500, "client {c}: never observed the reload");
                    let sent_after_reload = reloaded.load(Ordering::SeqCst);
                    let resp = client
                        .request(
                            "POST",
                            &format!("/extract/{DEMO_CLUSTER}/batch?threads=2"),
                            &[],
                            body.as_bytes(),
                        )
                        .expect("batch request");
                    assert_eq!(resp.status, 200, "client {c} request {requests}");
                    let got = resp.body_utf8();
                    if got == want_v1 {
                        assert!(
                            !sent_after_reload,
                            "client {c} request {requests}: stale rules after reload completed"
                        );
                        assert!(
                            !saw_v2,
                            "client {c} request {requests}: rules went backwards (v2 then v1)"
                        );
                    } else if got == want_v2 {
                        saw_v2 = true;
                    } else {
                        panic!("client {c} request {requests}: matches neither rule version");
                    }
                    completed.fetch_add(1, Ordering::SeqCst);
                }
                requests
            }));
        }

        // Let real traffic accumulate, then hot-reload mid-run.
        while completed.load(Ordering::SeqCst) < CLIENTS * 2 {
            std::thread::sleep(Duration::from_millis(2));
        }
        let resp = request_once(
            addr,
            "PUT",
            &format!("/clusters/{DEMO_CLUSTER}"),
            &[],
            testdata::updated_cluster_json().as_bytes(),
        )
        .expect("PUT reload");
        assert_eq!(resp.status, 200, "{}", resp.body_utf8());
        reloaded.store(true, Ordering::SeqCst);

        let totals: Vec<usize> = clients.into_iter().map(|c| c.join().expect("client")).collect();
        // Every client kept its connection through the reload and did
        // real work on both sides of it.
        assert!(totals.iter().all(|&t| t >= MIN_REQUESTS_PER_CLIENT), "{totals:?}");
    });

    // The repository-level counters saw the invalidation.
    let stats = handle.state().repo().stats();
    assert!(stats.compiled_cache_invalidations >= 1, "{stats:?}");
    assert!(stats.compiled_cache_hits > 0, "{stats:?}");
    handle.shutdown();
}

/// Shutdown drains: connections accepted before shutdown still get full
/// responses, none are dropped.
#[test]
fn shutdown_drains_accepted_connections() {
    // Two workers and a deep queue: most of the burst is still queued
    // when shutdown begins.
    let handle =
        start_server(ServerConfig { threads: 2, queue_capacity: 32, ..Default::default() });
    let addr = handle.addr();
    let pages = demo_pages(8);
    let body = Arc::new(pages_json(&pages));
    let want = direct_extract_xml(&testdata::cluster_from(&testdata::demo_cluster_json()), &pages);

    const BURST: usize = 10;
    let mut clients = Vec::new();
    for _ in 0..BURST {
        let body = Arc::clone(&body);
        clients.push(std::thread::spawn(move || {
            request_once(
                addr,
                "POST",
                &format!("/extract/{DEMO_CLUSTER}/batch"),
                &[],
                body.as_bytes(),
            )
        }));
    }
    // Give the acceptor time to pull the whole burst off the backlog,
    // then shut down while most responses are still pending.
    std::thread::sleep(Duration::from_millis(100));
    handle.shutdown();

    let mut served = 0;
    for client in clients {
        let resp = client.join().expect("client thread").expect("response after drain");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body_utf8(), want, "drained response still correct");
        served += 1;
    }
    assert_eq!(served, BURST, "no accepted request may be dropped");
}

#[test]
fn crud_check_and_errors() {
    let dir = std::env::temp_dir().join(format!("retroweb-service-crud-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let repo_path = dir.join("rules.json");
    let handle =
        start_server(ServerConfig { repo_path: Some(repo_path.clone()), ..Default::default() });
    let addr = handle.addr();
    let mut client = Client::connect(addr).expect("connect");

    // GET the recorded cluster: exactly its repository JSON.
    let resp = client.request("GET", &format!("/clusters/{DEMO_CLUSTER}"), &[], b"").unwrap();
    assert_eq!(resp.status, 200);
    let got = retroweb_json::parse(&resp.body_utf8()).unwrap();
    assert_eq!(got, testdata::cluster_from(&testdata::demo_cluster_json()).to_json());

    // Cluster list.
    let resp = client.request("GET", "/clusters", &[], b"").unwrap();
    assert!(resp.body_utf8().contains(DEMO_CLUSTER));

    // PUT persists durably — but as a WAL append, not a snapshot
    // rewrite: the snapshot file is untouched, and replaying the pair
    // of files reproduces the acknowledged mutation.
    let resp = client
        .request(
            "PUT",
            &format!("/clusters/{DEMO_CLUSTER}"),
            &[],
            testdata::updated_cluster_json().as_bytes(),
        )
        .unwrap();
    assert_eq!(resp.status, 200);
    assert!(!repo_path.exists(), "PUT must not rewrite the whole repository file");
    let wal_path = dir.join("rules.json.wal");
    assert!(wal_path.exists(), "mutation must be logged");
    let on_disk =
        retrozilla::DurableRepository::open_wal(repo_path.clone(), &wal_path, 1024).unwrap();
    assert_eq!(
        on_disk.store().get(DEMO_CLUSTER),
        Some(testdata::cluster_from(&testdata::updated_cluster_json()))
    );
    drop(on_disk);

    // Bad rule documents are rejected with diagnosable context.
    let bad = r#"{"cluster":"demo-movies","page-element":"p","rules":[{"name":"ok","optionality":"sometimes","multiplicity":"single-valued","format":"text","locations":[]}]}"#;
    let resp =
        client.request("PUT", &format!("/clusters/{DEMO_CLUSTER}"), &[], bad.as_bytes()).unwrap();
    assert_eq!(resp.status, 400);
    let msg = resp.body_utf8().into_owned();
    assert!(msg.contains("bad optionality 'sometimes'"), "{msg}");
    assert!(msg.contains("rules[0].optionality"), "{msg}");

    // Name mismatch between path and document.
    let resp = client
        .request("PUT", "/clusters/other-name", &[], testdata::demo_cluster_json().as_bytes())
        .unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.body_utf8().contains("mismatch"), "{}", resp.body_utf8());

    // Drift check: clean pages report no drift, drifted pages do.
    let clean = pages_json(&demo_pages(3));
    let resp =
        client.request("POST", &format!("/check/{DEMO_CLUSTER}"), &[], clean.as_bytes()).unwrap();
    let report = resp.body_json().unwrap();
    // v2 rules are live after the PUT above; clean pages still satisfy them.
    assert_eq!(report.get("drifted").and_then(|d| d.as_bool()), Some(false), "{report}");

    let drifted = pages_json(&[drifted_page(0), drifted_page(1)]);
    let resp =
        client.request("POST", &format!("/check/{DEMO_CLUSTER}"), &[], drifted.as_bytes()).unwrap();
    let report = resp.body_json().unwrap();
    assert_eq!(report.get("drifted").and_then(|d| d.as_bool()), Some(true), "{report}");
    let failures = report.get("failures").and_then(|f| f.as_array()).unwrap();
    assert!(
        failures.iter().any(|f| f.get("component").and_then(|c| c.as_str()) == Some("title")
            && f.get("kind").and_then(|k| k.as_str()) == Some("mandatory-missing")),
        "{report}"
    );

    // Unknown clusters and endpoints.
    let resp = client.request("POST", "/extract/nope", &[], b"<html></html>").unwrap();
    assert_eq!(resp.status, 404);
    let resp = client.request("GET", "/no/such/path", &[], b"").unwrap();
    assert_eq!(resp.status, 404);
    let resp = client.request("PATCH", "/clusters/x", &[], b"").unwrap();
    assert_eq!(resp.status, 405);
    let resp = client.request("POST", &format!("/check/{DEMO_CLUSTER}"), &[], b"not json").unwrap();
    assert_eq!(resp.status, 400);

    // DELETE removes and persists (another log append).
    let resp = client.request("DELETE", &format!("/clusters/{DEMO_CLUSTER}"), &[], b"").unwrap();
    assert_eq!(resp.status, 200);
    let resp = client.request("GET", &format!("/clusters/{DEMO_CLUSTER}"), &[], b"").unwrap();
    assert_eq!(resp.status, 404);
    handle.shutdown();
    let on_disk =
        retrozilla::DurableRepository::open_wal(repo_path.clone(), &wal_path, 1024).unwrap();
    assert!(on_disk.store().is_empty());

    std::fs::remove_dir_all(&dir).ok();
}

/// Unsupported or oversized framing is rejected up front with the right
/// status, never misread as an empty body.
#[test]
fn framing_rejections() {
    use std::io::{Read, Write};

    let handle = start_server(ServerConfig::default());
    let addr = handle.addr();
    let raw = |request: &str| -> String {
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        stream.write_all(request.as_bytes()).expect("write");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read");
        out
    };

    // Chunked transfer encoding: rejected, not framed as Content-Length 0.
    let resp = raw(
        "POST /extract/demo-movies HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n",
    );
    assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
    assert!(resp.contains("Transfer-Encoding is not supported"), "{resp}");

    // Declared body beyond the cap: 413, closed before reading it.
    let resp = raw("POST /extract/demo-movies HTTP/1.1\r\ncontent-length: 99999999999\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 413"), "{resp}");

    // HTTP/1.0 without keep-alive: the server must close, or an
    // EOF-delimited 1.0 client (like this helper) hangs forever.
    let resp = raw("GET /healthz HTTP/1.0\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    assert!(resp.contains("connection: close"), "{resp}");

    // `Expect: 100-continue` gets an immediate interim nod (otherwise
    // curl stalls ~1 s before uploading any large batch body), then the
    // real response once the body arrives.
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream
        .write_all(
            b"POST /extract/demo-movies HTTP/1.1\r\nexpect: 100-continue\r\n\
              connection: close\r\ncontent-length: 26\r\n\r\n",
        )
        .expect("write head");
    let mut first = [0u8; 25];
    stream.read_exact(&mut first).expect("interim response");
    assert_eq!(&first, b"HTTP/1.1 100 Continue\r\n\r\n");
    stream.write_all(b"<html><body>x</body></html>"[..26].as_ref()).expect("write body");
    let mut rest = String::new();
    stream.read_to_string(&mut rest).expect("final response");
    assert!(rest.starts_with("HTTP/1.1 200"), "{rest}");

    // An HTTP/1.0 peer's Expect header is ignored (RFC 7231 §5.1.1):
    // 1xx interim responses postdate 1.0 and would be misread as the
    // final response. The first bytes it sees must be the real reply.
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream
        .write_all(
            b"POST /extract/demo-movies HTTP/1.0\r\nexpect: 100-continue\r\n\
              content-length: 26\r\n\r\n",
        )
        .expect("write head");
    std::thread::sleep(Duration::from_millis(50)); // give a buggy nod time to arrive
    stream.write_all(b"<html><body>x</body></html>"[..26].as_ref()).expect("write body");
    let mut resp = String::new();
    stream.read_to_string(&mut resp).expect("response");
    assert!(resp.starts_with("HTTP/1.1 200"), "1.0 peer must never see a 100: {resp}");

    handle.shutdown();
}

/// ISO-8859-1 pages — the encoding the paper's sites (and our XML
/// declaration) use — must not be lossily mangled on the way in.
#[test]
fn latin1_page_bodies_decode_losslessly() {
    let handle = start_server(ServerConfig::default());
    let addr = handle.addr();
    // "Amélie" with é as the single Latin-1 byte 0xE9 — invalid UTF-8.
    let mut body = b"<html><body><h1>Am\xE9lie</h1><ul><li>Drama</li></ul></body></html>".to_vec();
    assert!(std::str::from_utf8(&body).is_err());
    let mut client = Client::connect(addr).expect("connect");
    // Declared charset.
    let resp = client
        .request(
            "POST",
            &format!("/extract/{DEMO_CLUSTER}"),
            &[("content-type", "text/html; charset=ISO-8859-1")],
            &body,
        )
        .expect("latin1 extract");
    assert_eq!(resp.status, 200);
    assert!(resp.body_utf8().contains("<title>Am\u{e9}lie</title>"), "{}", resp.body_utf8());
    // Undeclared charset falls back to Latin-1 for non-UTF-8 bytes.
    body.rotate_left(0); // same body, no content-type header
    let resp = client
        .request("POST", &format!("/extract/{DEMO_CLUSTER}"), &[], &body)
        .expect("fallback extract");
    assert!(resp.body_utf8().contains("<title>Am\u{e9}lie</title>"), "{}", resp.body_utf8());
    handle.shutdown();
}

/// The streaming acceptance criterion: `/extract/{c}/batch` responds
/// with chunked Transfer-Encoding, and the decoded body is byte-
/// identical to the pre-streaming buffered output (= a direct
/// `extract_cluster(...).xml.to_string_with(2)`).
#[test]
fn chunked_batch_decodes_to_buffered_bytes() {
    use std::io::{Read, Write};

    let handle = start_server(ServerConfig::default());
    let addr = handle.addr();
    let pages = demo_pages(48);
    let body = pages_json(&pages);
    let want = direct_extract_xml(&testdata::cluster_from(&testdata::demo_cluster_json()), &pages);

    // Through the decoding client: body equality plus framing headers.
    let mut client = Client::connect(addr).expect("connect");
    let resp = client
        .request("POST", &format!("/extract/{DEMO_CLUSTER}/batch?threads=3"), &[], body.as_bytes())
        .expect("batch");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("transfer-encoding"), Some("chunked"));
    assert_eq!(resp.header("content-length"), None, "streamed reply must not be sized");
    assert_eq!(resp.header("x-retroweb-pages"), None, "batch no longer carries count headers");
    assert_eq!(resp.body_utf8(), want);
    // The connection stays usable after a chunked exchange.
    let resp = client.request("GET", "/healthz", &[], b"").expect("keep-alive after chunked");
    assert_eq!(resp.status, 200);
    // Summary counters for the batch path live on /metrics now.
    let resp = client.request("GET", "/metrics", &[], b"").expect("metrics");
    let metrics = resp.body_json().unwrap();
    assert!(
        metrics.get("bytes_streamed").unwrap().as_u64().unwrap() >= want.len() as u64,
        "{metrics}"
    );
    assert_eq!(metrics.get("pages_extracted").unwrap().as_u64(), Some(48));

    // Raw socket: the wire really is chunk-framed (hex length lines),
    // not just advertised as such.
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    let head = format!(
        "POST /extract/{DEMO_CLUSTER}/batch HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\
         content-length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let body_start = raw.find("\r\n\r\n").unwrap() + 4;
    let first_chunk_line = raw[body_start..].lines().next().unwrap();
    assert!(
        usize::from_str_radix(first_chunk_line.trim(), 16).is_ok(),
        "first body line must be a hex chunk size, got {first_chunk_line:?}"
    );
    assert!(raw.ends_with("0\r\n\r\n"), "terminal chunk missing");

    // An HTTP/1.0 peer (no chunked framing) gets the same bytes
    // EOF-delimited with `connection: close`.
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    let head = format!(
        "POST /extract/{DEMO_CLUSTER}/batch HTTP/1.0\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.contains("connection: close"), "{}", &raw[..raw.find("\r\n\r\n").unwrap()]);
    assert!(!raw.contains("transfer-encoding"), "1.0 peer must not get chunked framing");
    assert_eq!(&raw[raw.find("\r\n\r\n").unwrap() + 4..], want);

    handle.shutdown();
}

/// `Accept: application/x-ndjson` negotiates the record stream: one
/// JSON object per page, failures in-line, a summary line last.
#[test]
fn batch_ndjson_negotiation() {
    let handle = start_server(ServerConfig::default());
    let addr = handle.addr();
    let mut pages = demo_pages(5);
    pages.push(drifted_page(5)); // one mandatory-missing failure
    let body = pages_json(&pages);

    let mut client = Client::connect(addr).expect("connect");
    let resp = client
        .request(
            "POST",
            &format!("/extract/{DEMO_CLUSTER}/batch?threads=2"),
            &[("accept", "application/x-ndjson")],
            body.as_bytes(),
        )
        .expect("ndjson batch");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("content-type"), Some("application/x-ndjson"));
    let text = resp.body_utf8().into_owned();
    let lines: Vec<retroweb_json::Json> =
        text.lines().map(|l| retroweb_json::parse(l).expect(l)).collect();
    // 6 page lines + 1 failure line + 1 summary line, pages in order.
    assert_eq!(lines.len(), 8, "{text}");
    let page_uris: Vec<&str> = lines
        .iter()
        .filter(|l| l.get("type").and_then(|t| t.as_str()) == Some("page"))
        .map(|l| l.get("uri").and_then(|u| u.as_str()).unwrap())
        .collect();
    let want_uris: Vec<&str> = pages.iter().map(|(u, _)| u.as_str()).collect();
    assert_eq!(page_uris, want_uris);
    assert_eq!(
        lines[0].get("values").unwrap().get("title").unwrap().as_array().unwrap()[0].as_str(),
        Some("Movie 0")
    );
    let failure = lines
        .iter()
        .find(|l| l.get("type").and_then(|t| t.as_str()) == Some("failure"))
        .expect("failure line");
    assert_eq!(failure.get("component").and_then(|c| c.as_str()), Some("title"));
    assert_eq!(failure.get("kind").and_then(|k| k.as_str()), Some("mandatory-missing"));
    let summary = lines.last().unwrap();
    assert_eq!(summary.get("type").and_then(|t| t.as_str()), Some("summary"));
    assert_eq!(summary.get("pages").and_then(|p| p.as_u64()), Some(6));
    assert_eq!(summary.get("failures").and_then(|f| f.as_u64()), Some(1));

    // XML remains the default for clients that don't ask for NDJSON.
    let resp = client
        .request(
            "POST",
            &format!("/extract/{DEMO_CLUSTER}/batch"),
            &[("accept", "text/html, application/xml")],
            body.as_bytes(),
        )
        .expect("xml batch");
    assert!(resp.header("content-type").unwrap().starts_with("application/xml"));

    handle.shutdown();
}

/// An unparseable `?threads=` is a diagnosed 400, not a silent default.
#[test]
fn bad_threads_param_is_rejected() {
    let handle = start_server(ServerConfig::default());
    let addr = handle.addr();
    let body = pages_json(&demo_pages(2));
    let mut client = Client::connect(addr).expect("connect");
    for bad in ["abc", "-1", "3.5", ""] {
        let resp = client
            .request(
                "POST",
                &format!("/extract/{DEMO_CLUSTER}/batch?threads={bad}"),
                &[],
                body.as_bytes(),
            )
            .expect("request");
        assert_eq!(resp.status, 400, "threads={bad}");
        assert!(resp.body_utf8().contains("threads"), "{}", resp.body_utf8());
    }
    // Parseable values still work (and are clamped, not rejected).
    let resp = client
        .request(
            "POST",
            &format!("/extract/{DEMO_CLUSTER}/batch?threads=9999"),
            &[],
            body.as_bytes(),
        )
        .expect("request");
    assert_eq!(resp.status, 200);
    handle.shutdown();
}

/// The WAL acceptance criterion end-to-end: acknowledged mutations are
/// single log appends (no snapshot rewrite), a restart replays them,
/// and crossing `compact_every` folds the log into the snapshot and
/// truncates it.
#[test]
fn wal_mutations_survive_restart_and_compact() {
    let dir = std::env::temp_dir().join(format!("retroweb-service-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let repo_path = dir.join("rules.json");
    let wal_path = dir.join("rules.json.wal");
    let config =
        ServerConfig { repo_path: Some(repo_path.clone()), compact_every: 3, ..Default::default() };

    // First server lifetime: two mutations — below the compaction
    // threshold, so everything lives in the log.
    let handle = Server::bind(retrozilla::RuleRepository::new(), config.clone())
        .expect("bind")
        .start()
        .expect("start");
    let addr = handle.addr();
    let resp = request_once(
        addr,
        "PUT",
        &format!("/clusters/{DEMO_CLUSTER}"),
        &[],
        testdata::demo_cluster_json().as_bytes(),
    )
    .expect("PUT");
    assert_eq!(resp.status, 201, "{}", resp.body_utf8());
    let resp = request_once(
        addr,
        "PUT",
        &format!("/clusters/{DEMO_CLUSTER}"),
        &[],
        testdata::updated_cluster_json().as_bytes(),
    )
    .expect("PUT v2");
    assert_eq!(resp.status, 200);
    assert!(!repo_path.exists(), "mutations must not rewrite the snapshot");
    let resp = request_once(addr, "GET", "/metrics", &[], b"").expect("metrics");
    let wal = resp.body_json().unwrap().get("wal").expect("wal metrics section").clone();
    assert_eq!(wal.get("appended_records").unwrap().as_u64(), Some(2), "{wal}");
    assert!(wal.get("appended_bytes").unwrap().as_u64().unwrap() > 0);
    assert_eq!(wal.get("compactions").unwrap().as_u64(), Some(0));
    handle.shutdown();

    // Restart: the log replays over the (absent) snapshot; v2 is live.
    let handle = Server::bind(retrozilla::RuleRepository::new(), config.clone())
        .expect("rebind")
        .start()
        .expect("restart");
    let addr = handle.addr();
    let resp =
        request_once(addr, "GET", &format!("/clusters/{DEMO_CLUSTER}"), &[], b"").expect("GET");
    assert_eq!(resp.status, 200);
    assert_eq!(
        retroweb_json::parse(&resp.body_utf8()).unwrap(),
        testdata::cluster_from(&testdata::updated_cluster_json()).to_json(),
        "replayed state must be the last acknowledged mutation"
    );
    let resp = request_once(addr, "GET", "/metrics", &[], b"").expect("metrics");
    let wal = resp.body_json().unwrap().get("wal").expect("wal section").clone();
    assert_eq!(wal.get("replayed_records").unwrap().as_u64(), Some(2), "{wal}");
    assert_eq!(wal.get("replay_torn_bytes").unwrap().as_u64(), Some(0));

    // One more mutation crosses compact_every (2 replayed + 1 = 3):
    // the snapshot appears, the log truncates back to its magic.
    let resp = request_once(
        addr,
        "PUT",
        &format!("/clusters/{DEMO_CLUSTER}"),
        &[],
        testdata::demo_cluster_json().as_bytes(),
    )
    .expect("PUT triggering compaction");
    assert_eq!(resp.status, 200);
    let resp = request_once(addr, "GET", "/metrics", &[], b"").expect("metrics");
    let wal = resp.body_json().unwrap().get("wal").expect("wal section").clone();
    assert_eq!(wal.get("compactions").unwrap().as_u64(), Some(1), "{wal}");
    assert_eq!(wal.get("since_compaction").unwrap().as_u64(), Some(0));
    assert!(repo_path.exists(), "compaction must write the snapshot");
    let snapshot = retrozilla::RuleRepository::load(&repo_path).expect("compacted snapshot");
    assert_eq!(
        snapshot.get(DEMO_CLUSTER),
        Some(testdata::cluster_from(&testdata::demo_cluster_json()))
    );
    assert_eq!(std::fs::metadata(&wal_path).unwrap().len(), 8, "log truncated to its magic");
    handle.shutdown();

    // Third lifetime: state comes purely from the snapshot.
    let handle =
        Server::bind(retrozilla::RuleRepository::load(&repo_path).expect("load snapshot"), config)
            .expect("rebind")
            .start()
            .expect("restart");
    let resp = request_once(handle.addr(), "GET", &format!("/clusters/{DEMO_CLUSTER}"), &[], b"")
        .expect("GET");
    assert_eq!(resp.status, 200);
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// The sharded-layout acceptance path end-to-end over HTTP: a server
/// started with `sharded_wal` opens `<repo>.d/` (one snapshot + WAL per
/// shard), mutations land as fsynced appends in exactly the shard their
/// cluster routes to, `/metrics` exposes per-shard gauges, a restart
/// replays every shard (in parallel), and per-shard compaction folds
/// only that shard's clusters.
#[test]
fn sharded_wal_layout_over_http() {
    use retrozilla::{shard_for, ShardManifest};
    let dir = std::env::temp_dir().join(format!("retroweb-service-shard-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let repo_path = dir.join("rules.json");
    let shard_dir = dir.join("rules.json.d");
    let config = ServerConfig {
        repo_path: Some(repo_path.clone()),
        shards: 4,
        sharded_wal: true,
        compact_every: 1_000,
        ..Default::default()
    };

    // First lifetime: record clusters under several names.
    let handle = Server::bind(retrozilla::RuleRepository::new(), config.clone())
        .expect("bind")
        .start()
        .expect("start");
    let addr = handle.addr();
    let names = ["alpha-movies", "beta-movies", "gamma-movies", "delta-movies"];
    for name in names {
        let body = testdata::demo_cluster_json().replace("demo-movies", name);
        let resp = request_once(addr, "PUT", &format!("/clusters/{name}"), &[], body.as_bytes())
            .expect("PUT");
        assert_eq!(resp.status, 201, "{name}: {}", resp.body_utf8());
    }
    assert!(shard_dir.join("manifest.json").exists(), "manifest committed");
    assert!(!repo_path.exists(), "single-file snapshot must not appear in sharded mode");
    // Each mutation was appended to the WAL its cluster routes to.
    for name in names {
        let wal = ShardManifest::wal_path(&shard_dir, shard_for(name, 4));
        assert!(wal.exists());
        let info = retrozilla::wal_info(&wal).unwrap();
        assert!(info.records >= 1, "{name} shard log empty");
    }
    // Per-shard gauges on /metrics.
    let resp = request_once(addr, "GET", "/metrics", &[], b"").expect("metrics");
    let metrics = resp.body_json().unwrap();
    let repo_shards = metrics.get("repository").unwrap().get("shards").unwrap();
    assert_eq!(repo_shards.as_array().unwrap().len(), 4, "{metrics}");
    let clusters_by_shard: usize = repo_shards
        .as_array()
        .unwrap()
        .iter()
        .map(|s| s.get("clusters").unwrap().as_u64().unwrap() as usize)
        .sum();
    assert_eq!(clusters_by_shard, names.len());
    let wal_shards = metrics.get("wal").unwrap().get("per_shard").unwrap();
    assert_eq!(wal_shards.as_array().unwrap().len(), 4);
    // Extraction works against the sharded store.
    let (_, html) = testdata::demo_page(3);
    let resp =
        request_once(addr, "POST", "/extract/beta-movies", &[], html.as_bytes()).expect("extract");
    assert_eq!(resp.status, 200);
    assert!(resp.body_utf8().contains("<title>Movie 3</title>"), "{}", resp.body_utf8());
    handle.shutdown();

    // Second lifetime: every shard replays.
    let handle = Server::bind(retrozilla::RuleRepository::new(), config.clone())
        .expect("rebind")
        .start()
        .expect("restart");
    let state = handle.state();
    assert_eq!(state.wal_stats().unwrap().replayed_records, names.len() as u64);
    assert_eq!(state.repo().len(), names.len());
    for name in names {
        let resp = request_once(handle.addr(), "GET", &format!("/clusters/{name}"), &[], b"")
            .expect("GET");
        assert_eq!(resp.status, 200, "{name} lost across restart");
    }
    // Compact: each shard folds only its own clusters into its own
    // snapshot; the logs truncate.
    state.durable().compact().unwrap();
    for name in names {
        let shard = shard_for(name, 4);
        let snap =
            retrozilla::RuleRepository::load(&ShardManifest::snapshot_path(&shard_dir, shard))
                .expect("shard snapshot");
        assert!(snap.get(name).is_some(), "{name} missing from shard {shard} snapshot");
        for other in names {
            if shard_for(other, 4) != shard {
                assert!(snap.get(other).is_none(), "{other} leaked into shard {shard}");
            }
        }
    }
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Binding a sharded server with a non-empty seed repository is
/// idempotent: the first start records the seed durably, a restart
/// with the same seed appends nothing (the opened layout already
/// holds the clusters) — otherwise every boot would replay the whole
/// seed into the WALs again.
#[test]
fn sharded_seed_is_recorded_once_across_restarts() {
    let dir = std::env::temp_dir().join(format!("retroweb-service-seed-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let config = ServerConfig {
        repo_path: Some(dir.join("rules.json")),
        shards: 4,
        sharded_wal: true,
        compact_every: 1_000_000,
        ..Default::default()
    };
    let handle = start_server(config.clone()); // demo repository seed (1 cluster)
    let report = handle.state().sharded_open_report().unwrap();
    assert_eq!(
        report.migrated_clusters,
        Some(1),
        "seed initialises the fresh layout inside the migration commit point"
    );
    assert_eq!(handle.state().wal_stats().unwrap().appended_records, 0);
    assert_eq!(handle.state().repo().len(), 1);
    handle.shutdown();
    let handle = start_server(config.clone()); // same seed again
    let report = handle.state().sharded_open_report().unwrap();
    assert_eq!(report.migrated_clusters, None, "existing layout: seed ignored");
    let stats = handle.state().wal_stats().unwrap();
    assert_eq!(stats.appended_records, 0, "restart must not re-append the seed");
    assert_eq!(handle.state().repo().len(), 1);
    // A durable DELETE must survive restarts even though the seed still
    // names the cluster — the layout's history is authoritative, and
    // re-seeding would resurrect the deleted cluster.
    let resp =
        request_once(handle.addr(), "DELETE", &format!("/clusters/{DEMO_CLUSTER}"), &[], b"")
            .expect("DELETE");
    assert_eq!(resp.status, 200);
    handle.shutdown();
    let handle = start_server(config); // same seed once more
    let resp = request_once(handle.addr(), "GET", &format!("/clusters/{DEMO_CLUSTER}"), &[], b"")
        .expect("GET");
    assert_eq!(resp.status, 404, "deleted cluster must stay deleted across restarts");
    assert_eq!(handle.state().repo().len(), 0);
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Migration path over HTTP: a repository built by a single-file-WAL
/// server lifetime is carried into the sharded directory layout the
/// first time the server starts with `sharded_wal`, including
/// log-only (never compacted) mutations.
#[test]
fn single_file_layout_migrates_into_sharded_server() {
    let dir = std::env::temp_dir().join(format!("retroweb-service-migrate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let repo_path = dir.join("rules.json");

    // Lifetime 1: classic single-file WAL server, one mutation.
    let single = ServerConfig {
        repo_path: Some(repo_path.clone()),
        compact_every: 1_000_000,
        ..Default::default()
    };
    let handle = start_server(single); // demo repository seed, ephemeral-in-memory…
                                       // …but the seed is not on disk: record a cluster so the WAL holds it.
    let resp = request_once(
        handle.addr(),
        "PUT",
        &format!("/clusters/{DEMO_CLUSTER}"),
        &[],
        testdata::updated_cluster_json().as_bytes(),
    )
    .expect("PUT");
    assert_eq!(resp.status, 200);
    handle.shutdown();
    assert!(dir.join("rules.json.wal").exists());

    // Lifetime 2: same --repo, now sharded. The WAL-only mutation must
    // be live, served from the migrated directory layout.
    let sharded = ServerConfig {
        repo_path: Some(repo_path.clone()),
        shards: 4,
        sharded_wal: true,
        ..Default::default()
    };
    let handle = Server::bind(retrozilla::RuleRepository::new(), sharded)
        .expect("bind sharded")
        .start()
        .expect("start sharded");
    let report = handle.state().sharded_open_report().expect("sharded report");
    assert_eq!(report.migrated_clusters, Some(1), "{report:?}");
    let resp = request_once(handle.addr(), "GET", &format!("/clusters/{DEMO_CLUSTER}"), &[], b"")
        .expect("GET");
    assert_eq!(resp.status, 200);
    assert_eq!(
        retroweb_json::parse(&resp.body_utf8()).unwrap(),
        testdata::cluster_from(&testdata::updated_cluster_json()).to_json(),
        "migrated state must be the last acknowledged single-file mutation"
    );
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// `--no-wal` keeps the legacy behaviour: every mutation rewrites the
/// whole snapshot, loadable directly.
#[test]
fn no_wal_mode_rewrites_snapshot_per_mutation() {
    let dir = std::env::temp_dir().join(format!("retroweb-service-nowal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let repo_path = dir.join("rules.json");
    let handle = start_server(ServerConfig {
        repo_path: Some(repo_path.clone()),
        wal_disabled: true,
        ..Default::default()
    });
    let resp = request_once(
        handle.addr(),
        "PUT",
        &format!("/clusters/{DEMO_CLUSTER}"),
        &[],
        testdata::updated_cluster_json().as_bytes(),
    )
    .expect("PUT");
    assert_eq!(resp.status, 200);
    let on_disk = retrozilla::RuleRepository::load(&repo_path).expect("rewritten snapshot");
    assert_eq!(
        on_disk.get(DEMO_CLUSTER),
        Some(testdata::cluster_from(&testdata::updated_cluster_json()))
    );
    assert!(!dir.join("rules.json.wal").exists(), "no log in --no-wal mode");
    let resp = request_once(handle.addr(), "GET", "/metrics", &[], b"").expect("metrics");
    assert!(resp.body_json().unwrap().get("wal").is_none(), "no wal metrics in --no-wal mode");
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Percent-encoded path segments and query values are decoded before
/// matching; invalid escapes are diagnosed 400s, not silent literals.
#[test]
fn percent_encoded_names_round_trip() {
    let handle = start_server(ServerConfig::default());
    let addr = handle.addr();
    let mut client = Client::connect(addr).expect("connect");

    // PUT under an encoded name records the *decoded* cluster…
    let body = testdata::demo_cluster_json().replace("demo-movies", "demo movies");
    let resp = client.request("PUT", "/clusters/demo%20movies", &[], body.as_bytes()).unwrap();
    assert_eq!(resp.status, 201, "{}", resp.body_utf8());
    // …which the cluster list shows decoded…
    let resp = client.request("GET", "/clusters", &[], b"").unwrap();
    assert!(resp.body_utf8().contains("demo movies"), "{}", resp.body_utf8());
    assert!(!resp.body_utf8().contains("demo%20movies"), "{}", resp.body_utf8());
    // …and an encoded GET resolves. (Pre-fix, the PUT recorded a
    // cluster literally named "demo%20movies" and this GET 404'd.)
    let resp = client.request("GET", "/clusters/demo%20movies", &[], b"").unwrap();
    assert_eq!(resp.status, 200);
    let got = retroweb_json::parse(&resp.body_utf8()).unwrap();
    assert_eq!(got.get("cluster").and_then(|c| c.as_str()), Some("demo movies"));
    // Extraction works through the encoded name too.
    let (_, html) = testdata::demo_page(0);
    let resp = client.request("POST", "/extract/demo%20movies", &[], html.as_bytes()).unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.body_utf8().contains("<title>Movie 0</title>"), "{}", resp.body_utf8());
    // DELETE through the encoded name.
    let resp = client.request("DELETE", "/clusters/demo%20movies", &[], b"").unwrap();
    assert_eq!(resp.status, 200);

    // Invalid escapes: path and query are both diagnosed.
    for path in ["/clusters/bad%zz", "/clusters/trunc%2", "/clusters/%ff"] {
        let resp = client.request("GET", path, &[], b"").unwrap();
        assert_eq!(resp.status, 400, "{path}");
        assert!(resp.body_utf8().contains("percent-escape"), "{}", resp.body_utf8());
    }
    let pages = pages_json(&demo_pages(2));
    let resp = client
        .request(
            "POST",
            &format!("/extract/{DEMO_CLUSTER}/batch?threads=%zz"),
            &[],
            pages.as_bytes(),
        )
        .unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.body_utf8().contains("percent-escape"), "{}", resp.body_utf8());
    // A valid escaped query value decodes (%34 = "4").
    let resp = client
        .request(
            "POST",
            &format!("/extract/{DEMO_CLUSTER}/batch?threads=%34"),
            &[],
            pages.as_bytes(),
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_utf8());
    handle.shutdown();
}

/// After a DELETE, the repository metrics stay coherent: the compiled-
/// cache entry dies with its cluster, so the entries gauge can never
/// exceed the cluster count.
#[test]
fn metrics_repo_counters_coherent_after_delete() {
    let handle = start_server(ServerConfig::default());
    let addr = handle.addr();
    let mut client = Client::connect(addr).expect("connect");

    // Compile the cluster by extracting once.
    let (_, html) = testdata::demo_page(0);
    let resp =
        client.request("POST", &format!("/extract/{DEMO_CLUSTER}"), &[], html.as_bytes()).unwrap();
    assert_eq!(resp.status, 200);
    let repo = |client: &mut Client| {
        let resp = client.request("GET", "/metrics", &[], b"").unwrap();
        resp.body_json().unwrap().get("repository").unwrap().clone()
    };
    let before = repo(&mut client);
    assert_eq!(before.get("clusters").unwrap().as_u64(), Some(1));
    assert_eq!(before.get("compiled_cache_entries").unwrap().as_u64(), Some(1));

    let resp = client.request("DELETE", &format!("/clusters/{DEMO_CLUSTER}"), &[], b"").unwrap();
    assert_eq!(resp.status, 200);
    let after = repo(&mut client);
    assert_eq!(after.get("clusters").unwrap().as_u64(), Some(0));
    assert_eq!(
        after.get("compiled_cache_entries").unwrap().as_u64(),
        Some(0),
        "a removed cluster's compilation must die with it: {after}"
    );
    assert_eq!(after.get("compiled_cache_invalidations").unwrap().as_u64(), Some(1));
    // And extraction against the dead cluster is a 404, not a stale hit.
    let resp =
        client.request("POST", &format!("/extract/{DEMO_CLUSTER}"), &[], html.as_bytes()).unwrap();
    assert_eq!(resp.status, 404);
    handle.shutdown();
}

/// A hot reload rebuilds the cluster's fused one-pass plan: the
/// `/metrics` fusion gauges track the live rule set's shape, not the
/// shape at first compile.
#[test]
fn hot_reload_rebuilds_fused_plan() {
    let handle = start_server(ServerConfig::default());
    let addr = handle.addr();
    let mut client = Client::connect(addr).expect("connect");

    let (_, html) = testdata::demo_page(0);
    let fusion = |client: &mut Client| {
        let resp = client.request("GET", "/metrics", &[], b"").unwrap();
        resp.body_json().unwrap().get("fusion").expect("fusion section").clone()
    };

    // Nothing compiled yet: no plans.
    assert_eq!(fusion(&mut client).get("plans").unwrap().as_u64(), Some(0));

    // Extract once to force the compile; the v1 demo cluster has three
    // rules with one location each, all fusible absolute paths.
    let resp =
        client.request("POST", &format!("/extract/{DEMO_CLUSTER}"), &[], html.as_bytes()).unwrap();
    assert_eq!(resp.status, 200);
    let v1 = fusion(&mut client);
    assert_eq!(v1.get("plans").unwrap().as_u64(), Some(1));
    assert_eq!(v1.get("paths_fused").unwrap().as_u64(), Some(3));
    assert_eq!(v1.get("paths_fallback").unwrap().as_u64(), Some(0));
    assert!(v1.get("steps_total").unwrap().as_u64().unwrap() > 0);

    // Hot reload to the two-rule v2 set and extract again: the fused
    // plan must have been rebuilt for the new rules.
    let resp = client
        .request(
            "PUT",
            &format!("/clusters/{DEMO_CLUSTER}"),
            &[],
            testdata::updated_cluster_json().as_bytes(),
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_utf8());
    let resp =
        client.request("POST", &format!("/extract/{DEMO_CLUSTER}"), &[], html.as_bytes()).unwrap();
    assert_eq!(resp.status, 200);
    let v2 = fusion(&mut client);
    assert_eq!(v2.get("plans").unwrap().as_u64(), Some(1));
    assert_eq!(
        v2.get("paths_fused").unwrap().as_u64(),
        Some(2),
        "reload must rebuild the fused plan: {v2}"
    );
    assert_ne!(
        v1.get("steps_total").unwrap().as_u64(),
        v2.get("steps_total").unwrap().as_u64(),
        "plan shape must follow the live rules"
    );
    handle.shutdown();
}

#[test]
fn metrics_reflect_traffic() {
    let handle = start_server(ServerConfig::default());
    let addr = handle.addr();
    let mut client = Client::connect(addr).expect("connect");

    let (uri, html) = testdata::demo_page(0);
    for _ in 0..3 {
        let resp = client
            .request(
                "POST",
                &format!("/extract/{DEMO_CLUSTER}"),
                &[("x-page-uri", uri.as_str())],
                html.as_bytes(),
            )
            .unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("x-retroweb-failures"), Some("0"));
    }
    let resp = client.request("POST", "/extract/nope", &[], b"x").unwrap();
    assert_eq!(resp.status, 404);

    let resp = client.request("GET", "/metrics", &[], b"").unwrap();
    let metrics = resp.body_json().unwrap();
    let requests = metrics.get("requests").unwrap();
    assert!(requests.get("total").unwrap().as_u64().unwrap() >= 4);
    assert_eq!(requests.get("by_endpoint").unwrap().get("extract").unwrap().as_u64(), Some(4));
    assert_eq!(metrics.get("pages_extracted").unwrap().as_u64(), Some(3));
    assert_eq!(metrics.get("responses").unwrap().get("4xx").unwrap().as_u64(), Some(1));
    let repo = metrics.get("repository").unwrap();
    assert_eq!(repo.get("clusters").unwrap().as_u64(), Some(1));
    // 1 build + 2 cache hits from the three extractions.
    assert_eq!(repo.get("compiled_cache_builds").unwrap().as_u64(), Some(1));
    assert!(repo.get("compiled_cache_hits").unwrap().as_u64().unwrap() >= 2);
    let latency = metrics.get("latency_ms").unwrap().get("extract").unwrap();
    assert_eq!(latency.get("count").unwrap().as_u64(), Some(4));
    assert!(latency.get("p99_ms").unwrap().as_f64().unwrap() > 0.0);

    let resp = client.request("GET", "/healthz", &[], b"").unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.body_utf8().contains("\"ok\""));
    handle.shutdown();
}

/// A cluster JSON body whose one rule has the given location list — the
/// minimal PUT payload for the lint tests.
fn lint_cluster_json(cluster: &str, locations: &[&str]) -> String {
    let locs: Vec<retroweb_json::Json> =
        locations.iter().map(|l| retroweb_json::Json::from(*l)).collect();
    retroweb_json::Json::object(vec![
        ("cluster".into(), retroweb_json::Json::from(cluster)),
        ("page-element".into(), retroweb_json::Json::from("page")),
        (
            "rules".into(),
            retroweb_json::Json::Array(vec![retroweb_json::Json::object(vec![
                ("name".into(), retroweb_json::Json::from("field")),
                ("optionality".into(), retroweb_json::Json::from("mandatory")),
                ("multiplicity".into(), retroweb_json::Json::from("single-valued")),
                ("format".into(), retroweb_json::Json::from("text")),
                ("locations".into(), retroweb_json::Json::Array(locs)),
                ("post".into(), retroweb_json::Json::Array(vec![])),
            ])]),
        ),
    ])
    .to_string_compact()
}

/// Strict-lint servers reject error-bearing rule sets over HTTP with
/// the structured diagnostics, leave the previous rules live, and still
/// accept clean (or merely warning-bearing) bodies.
#[test]
fn strict_lint_rejects_bad_rules_with_diagnostics() {
    let handle = start_server(ServerConfig { strict_lint: true, ..Default::default() });
    let addr = handle.addr();

    // A provably-empty location: TR[0] can never match (positions are
    // 1-based). The 400 body round-trips code, severity and span.
    let bad = lint_cluster_json("linted", &["//TABLE/TR[0]/TD/text()"]);
    let resp = request_once(addr, "PUT", "/clusters/linted", &[], bad.as_bytes()).expect("PUT");
    assert_eq!(resp.status, 400, "{}", resp.body_utf8());
    let body = resp.body_json().expect("rejection is JSON");
    let lint = body.get("lint").expect("lint payload in rejection");
    assert_eq!(lint.get("errors").unwrap().as_u64(), Some(1));
    let diag = &lint.get("diagnostics").unwrap().as_array().unwrap()[0];
    assert_eq!(diag.get("code").unwrap().as_str(), Some("unsat-position"));
    assert_eq!(diag.get("severity").unwrap().as_str(), Some("error"));
    let span = diag.get("span").unwrap().as_array().unwrap();
    let (s, e) = (span[0].as_u64().unwrap() as usize, span[1].as_u64().unwrap() as usize);
    let xpath = diag.get("xpath").unwrap().as_str().unwrap();
    assert_eq!(&xpath[s..e], "[0]", "span points at the unsatisfiable predicate");

    // Nothing was recorded.
    let resp = request_once(addr, "GET", "/clusters/linted", &[], b"").expect("GET");
    assert_eq!(resp.status, 404);

    // An unparseable location is a structured parse-error with the
    // byte offset of the failure.
    let unparseable = lint_cluster_json("linted", &["//TABLE/TR["]);
    let resp =
        request_once(addr, "PUT", "/clusters/linted", &[], unparseable.as_bytes()).expect("PUT");
    assert_eq!(resp.status, 400);
    let body = resp.body_json().expect("parse rejection is JSON");
    let diag = &body.get("diagnostics").unwrap().as_array().unwrap()[0];
    assert_eq!(diag.get("code").unwrap().as_str(), Some("parse-error"));
    assert_eq!(diag.get("xpath").unwrap().as_str(), Some("//TABLE/TR["));
    let span = diag.get("span").unwrap().as_array().unwrap();
    assert_eq!(span[0].as_u64(), Some("//TABLE/TR[".len() as u64), "offset at EOF");

    // A warning-bearing body passes the strict gate, with the findings
    // reported in the success body.
    let warned = lint_cluster_json("linted", &["//UL/LI/text()", "//UL/LI[2]/text()"]);
    let resp = request_once(addr, "PUT", "/clusters/linted", &[], warned.as_bytes()).expect("PUT");
    assert_eq!(resp.status, 201, "{}", resp.body_utf8());
    let body = resp.body_json().expect("success body is JSON");
    let lint = body.get("lint").expect("lint payload in success body");
    assert_eq!(lint.get("errors").unwrap().as_u64(), Some(0));
    assert_eq!(lint.get("warnings").unwrap().as_u64(), Some(1));
    let diag = &lint.get("diagnostics").unwrap().as_array().unwrap()[0];
    assert_eq!(diag.get("code").unwrap().as_str(), Some("dead-alternative"));

    // GET /clusters/{name}/lint serves the cached findings.
    let resp = request_once(addr, "GET", "/clusters/linted/lint", &[], b"").expect("GET lint");
    assert_eq!(resp.status, 200);
    let served = resp.body_json().expect("lint body");
    assert_eq!(served.get("warnings").unwrap().as_u64(), Some(1));
    let resp = request_once(addr, "GET", "/clusters/nope/lint", &[], b"").expect("GET lint 404");
    assert_eq!(resp.status, 404);
    // Wrong verb on the lint surface is a 405, not a 404.
    let resp = request_once(addr, "POST", "/lint", &[], b"").expect("POST lint");
    assert_eq!(resp.status, 405);
    handle.shutdown();
}

/// The repo-wide audit (`GET /lint`) is a pure function of the recorded
/// rule sets: two servers holding the same clusters in 1-shard and
/// 8-shard stores serve byte-identical reports.
#[test]
fn repo_lint_deterministic_across_shard_counts() {
    let payloads = [
        lint_cluster_json("alpha", &["//TABLE/TR/TD[1]/text()"]),
        lint_cluster_json("beta", &["//UL/LI/text()", "//UL/LI[2]/text()"]),
        lint_cluster_json("gamma", &["//H1/@id/text()"]),
    ];
    let mut bodies = Vec::new();
    for shards in [1usize, 8] {
        let handle = start_server(ServerConfig { shards, ..Default::default() });
        let addr = handle.addr();
        for (i, payload) in payloads.iter().enumerate() {
            let name = ["alpha", "beta", "gamma"][i];
            let resp =
                request_once(addr, "PUT", &format!("/clusters/{name}"), &[], payload.as_bytes())
                    .expect("PUT");
            assert!(resp.status == 200 || resp.status == 201, "{}", resp.body_utf8());
        }
        let resp = request_once(addr, "GET", "/lint", &[], b"").expect("GET /lint");
        assert_eq!(resp.status, 200);
        let report = resp.body_json().expect("lint report");
        // demo-movies + the three PUTs, in name order.
        assert_eq!(report.get("clusters").unwrap().as_u64(), Some(4));
        assert_eq!(report.get("errors").unwrap().as_u64(), Some(1), "gamma's empty step");
        assert!(report.get("warnings").unwrap().as_u64().unwrap() >= 1, "beta's dead alternative");
        bodies.push(resp.body_utf8().to_string());
        handle.shutdown();
    }
    assert_eq!(bodies[0], bodies[1], "lint report differs across shard counts");
}

/// The `/metrics` lint section stays coherent through the PUT → audit →
/// DELETE lifecycle: severity gauges track the cached clusters, the
/// per-code counters track what PUTs observed, and strict rejections
/// are counted.
#[test]
fn metrics_lint_section_coherent_after_put_and_delete() {
    let handle = start_server(ServerConfig::default());
    let addr = handle.addr();
    let lint_section = |addr| {
        let resp = request_once(addr, "GET", "/metrics", &[], b"").expect("GET /metrics");
        resp.body_json().expect("metrics json").get("lint").expect("lint section").clone()
    };

    // A non-strict server accepts the error-bearing rules; the PUT warms
    // the compiled cache, so the gauges see them immediately.
    let bad = lint_cluster_json("badling", &["//TABLE/TR[0]/TD/text()"]);
    let resp = request_once(addr, "PUT", "/clusters/badling", &[], bad.as_bytes()).expect("PUT");
    assert_eq!(resp.status, 201, "{}", resp.body_utf8());
    let lint = lint_section(addr);
    assert_eq!(lint.get("errors").unwrap().as_u64(), Some(1), "{lint:?}");
    assert_eq!(lint.get("error_clusters").unwrap().as_u64(), Some(1), "{lint:?}");
    assert_eq!(
        lint.get("observed_by_code").unwrap().get("unsat-position").unwrap().as_u64(),
        Some(1),
        "{lint:?}"
    );
    assert_eq!(lint.get("strict_rejections").unwrap().as_u64(), Some(0));

    // Dropping the cluster drops its findings from the gauges; the
    // observation counters keep their history.
    let resp = request_once(addr, "DELETE", "/clusters/badling", &[], b"").expect("DELETE");
    assert_eq!(resp.status, 200);
    let lint = lint_section(addr);
    assert_eq!(lint.get("errors").unwrap().as_u64(), Some(0), "{lint:?}");
    assert_eq!(lint.get("error_clusters").unwrap().as_u64(), Some(0), "{lint:?}");
    assert_eq!(
        lint.get("observed_by_code").unwrap().get("unsat-position").unwrap().as_u64(),
        Some(1),
        "observation history survives the delete: {lint:?}"
    );
    handle.shutdown();
}
