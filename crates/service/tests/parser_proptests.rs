//! Property tests for the incremental request parser: however the
//! bytes are sliced — one-shot, byte-at-a-time, or arbitrary chunk
//! boundaries — the parsed [`Request`]s must be identical. This is the
//! invariant the evented front end stands on: readiness events hand it
//! unpredictable fragments, and the blocking front end's behaviour is
//! the reference.

use proptest::prelude::*;
use retroweb_service::http::{ParseProgress, Request, RequestParser};

/// One generated request: method, path tail, extra header value, body.
#[derive(Clone, Debug)]
struct GenReq {
    method: &'static str,
    path: String,
    query: String,
    header_val: String,
    body: Vec<u8>,
    http10: bool,
}

fn render(reqs: &[GenReq]) -> Vec<u8> {
    let mut wire = Vec::new();
    for r in reqs {
        let version = if r.http10 { "HTTP/1.0" } else { "HTTP/1.1" };
        let query = if r.query.is_empty() { String::new() } else { format!("?{}", r.query) };
        wire.extend_from_slice(
            format!(
                "{} /t/{}{} {version}\r\nhost: loopback\r\nx-trace: {}\r\ncontent-length: {}\r\n\r\n",
                r.method,
                r.path,
                query,
                r.header_val,
                r.body.len(),
            )
            .as_bytes(),
        );
        wire.extend_from_slice(&r.body);
    }
    wire
}

/// Feed `wire` into a fresh parser in the given chunk sizes (cycled)
/// and return every completed request. Panics on `Malformed` — the
/// generator only produces well-formed requests.
fn parse_chunked(wire: &[u8], chunk_sizes: &[usize]) -> Vec<Request> {
    let mut parser = RequestParser::new();
    let mut buf: Vec<u8> = Vec::new();
    let mut out = Vec::new();
    let mut pos = 0;
    let mut cycle = chunk_sizes.iter().cycle();
    while pos < wire.len() {
        let take = (*cycle.next().expect("cycled")).max(1).min(wire.len() - pos);
        buf.extend_from_slice(&wire[pos..pos + take]);
        pos += take;
        loop {
            match parser.advance(&mut buf) {
                ParseProgress::Complete(req) => out.push(req),
                ParseProgress::NeedMore => break,
                ParseProgress::Malformed(status, why) => {
                    panic!("well-formed input rejected: {status} {why}")
                }
            }
        }
    }
    assert!(buf.is_empty(), "parser left {} unconsumed byte(s)", buf.len());
    out
}

fn req_strategy() -> impl Strategy<Value = GenReq> {
    (
        prop::sample::select(vec!["GET", "POST", "PUT", "DELETE"]),
        "[a-z0-9]{1,12}",
        prop_oneof![Just(String::new()), "[a-z]{1,4}=[a-z0-9]{1,6}".prop_map(|s| s)],
        "[ -~]{0,20}",
        prop::collection::vec(any::<u8>(), 0..80),
        any::<bool>(),
    )
        .prop_map(|(method, path, query, header_val, body, http10)| GenReq {
            method,
            path,
            query,
            // Trim so header values survive the parser's whitespace trim.
            header_val: header_val.trim().to_string(),
            body,
            http10,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Byte-at-a-time trickle parses to exactly what one-shot does.
    #[test]
    fn byte_at_a_time_equals_one_shot(reqs in prop::collection::vec(req_strategy(), 1..5)) {
        let wire = render(&reqs);
        let one_shot = parse_chunked(&wire, &[wire.len()]);
        let trickled = parse_chunked(&wire, &[1]);
        prop_assert_eq!(one_shot.len(), reqs.len());
        prop_assert_eq!(&one_shot, &trickled);
    }

    // Arbitrary split points — the shapes readiness events produce —
    // parse to exactly what one-shot does.
    #[test]
    fn random_splits_equal_one_shot(
        reqs in prop::collection::vec(req_strategy(), 1..5),
        chunks in prop::collection::vec(1usize..23, 1..8),
    ) {
        let wire = render(&reqs);
        let one_shot = parse_chunked(&wire, &[wire.len()]);
        let split = parse_chunked(&wire, &chunks);
        prop_assert_eq!(one_shot.len(), reqs.len());
        prop_assert_eq!(&one_shot, &split);
    }

    // The parsed fields themselves round-trip the generated values —
    // guarding against one-shot and incremental agreeing on garbage.
    #[test]
    fn parsed_fields_round_trip(reqs in prop::collection::vec(req_strategy(), 1..4)) {
        let wire = render(&reqs);
        let parsed = parse_chunked(&wire, &[3]);
        prop_assert_eq!(parsed.len(), reqs.len());
        for (got, want) in parsed.iter().zip(&reqs) {
            prop_assert_eq!(got.method.as_str(), want.method);
            let want_path = format!("/t/{}", want.path);
            prop_assert_eq!(got.path.as_str(), want_path.as_str());
            prop_assert_eq!(got.query.as_str(), want.query.as_str());
            prop_assert_eq!(got.headers.get("x-trace").map(String::as_str),
                            Some(want.header_val.as_str()));
            prop_assert_eq!(&got.body, &want.body);
            prop_assert_eq!(got.http10, want.http10);
        }
    }
}
