//! Deterministic data pools for the synthetic sites.

pub const MOVIE_TITLES: &[&str] = &[
    "The Last Projection",
    "Midnight Tram",
    "A Winter Apart",
    "Glass Harbour",
    "The Cartographer",
    "Iron Orchard",
    "Signal Fires",
    "The Quiet Divide",
    "Paper Lanterns",
    "Thirteen Bridges",
    "The Salt Road",
    "Golden Hour",
    "Night Ferries",
    "The Forgotten Reel",
    "Static Horizon",
    "Copper Sky",
    "The Long Intermission",
    "Silent Caravan",
    "Borrowed Light",
    "The Archivist",
    "Wooden Stars",
    "Autumn Protocol",
    "The Velvet Gate",
    "Lowland Express",
    "Clockwork Tide",
    "The Ninth Winter",
    "Amber Station",
    "Hollow Crown Road",
    "The Lighthouse Wager",
    "Vanishing Meridian",
    "Slow Thunder",
    "The Glass Piano",
];

pub const PERSON_NAMES: &[&str] = &[
    "Marta Velasquez",
    "Henrik Olsen",
    "Claire Fontaine",
    "Dmitri Petrov",
    "Yuki Tanaka",
    "Samuel Okafor",
    "Ingrid Bergstrom",
    "Paolo Ricci",
    "Anne Delacroix",
    "Viktor Hansen",
    "Leila Haddad",
    "Tomas Novak",
    "Greta Lindqvist",
    "Marco Bellini",
    "Sofia Andersson",
    "Jean-Pierre Moreau",
    "Elena Vasquez",
    "Lars Nilsson",
    "Camille Rousseau",
    "Andrei Volkov",
    "Nadia Rahman",
    "Oliver Whitfield",
    "Isabel Castro",
    "Magnus Berg",
];

pub const COUNTRIES: &[&str] = &[
    "USA",
    "UK",
    "France",
    "Belgium",
    "Italy",
    "Germany",
    "Spain",
    "Japan",
    "Canada",
    "Sweden",
    "Denmark",
    "Netherlands",
    "Australia",
    "Brazil",
];

pub const LANGUAGES: &[&str] = &[
    "English",
    "French",
    "Italian",
    "German",
    "Spanish",
    "Japanese",
    "Dutch",
    "Swedish",
    "Russian",
    "Portuguese",
];

pub const GENRES: &[&str] = &[
    "Drama",
    "Comedy",
    "Thriller",
    "Documentary",
    "Romance",
    "Mystery",
    "Adventure",
    "Animation",
    "Crime",
    "Fantasy",
    "Western",
    "Musical",
];

pub const PRODUCT_NAMES: &[&str] = &[
    "Aurora Desk Lamp",
    "Basalt Chef Knife",
    "Cirrus Travel Mug",
    "Delta Field Watch",
    "Ember Space Heater",
    "Fjord Wool Blanket",
    "Granite Book Stand",
    "Harbor Rain Jacket",
    "Isle Ceramic Teapot",
    "Juniper Candle Set",
    "Kestrel Binoculars",
    "Larch Cutting Board",
    "Meridian Alarm Clock",
    "Nimbus Umbrella",
    "Onyx Fountain Pen",
    "Pembroke Satchel",
    "Quarry Stone Mortar",
    "Reef Snorkel Kit",
    "Summit Trekking Poles",
    "Tundra Thermos",
];

pub const BRANDS: &[&str] = &[
    "Northwind",
    "Caldera",
    "Bellweather",
    "Osprey & Finch",
    "Arcadia Works",
    "Stonebridge",
    "Meridian Goods",
    "Halcyon Supply",
];

pub const FEATURES: &[&str] = &[
    "Dishwasher safe",
    "Two-year warranty",
    "Recycled materials",
    "Hand finished",
    "Water resistant",
    "Lifetime sharpening",
    "Ships in plain packaging",
    "Solar assisted",
    "Left-handed variant available",
    "Replaceable parts",
];

pub const HEADLINE_SUBJECTS: &[&str] = &[
    "City council",
    "Research consortium",
    "Harbour authority",
    "National archive",
    "Transit agency",
    "Observatory",
    "Botanical gardens",
    "Housing cooperative",
    "Film commission",
    "Fisheries board",
];

pub const HEADLINE_VERBS: &[&str] = &[
    "approves",
    "delays",
    "expands",
    "reviews",
    "celebrates",
    "audits",
    "restores",
    "digitises",
    "rethinks",
    "funds",
];

pub const HEADLINE_OBJECTS: &[&str] = &[
    "the riverfront plan",
    "a landmark study",
    "its oldest collection",
    "the night bus network",
    "a restoration project",
    "the annual census",
    "a public consultation",
    "the winter programme",
    "new storage vaults",
    "an open data portal",
];

pub const COMMENT_SENTENCES: &[&str] = &[
    "Long overdue if you ask me.",
    "I attended the hearing and the details were thin.",
    "Great news for the east side.",
    "Hope the budget survives the review.",
    "This was tried in 1998 and quietly shelved.",
    "The archive deserves the attention.",
    "Cautiously optimistic about this one.",
    "Someone should audit the auditors.",
    "Finally some follow-through.",
    "The consultation was a formality, frankly.",
];

pub const NOISE_SNIPPETS: &[&str] = &[
    "Advertisement",
    "Sponsored links",
    "Site navigation",
    "Member login",
    "Top searches this week",
    "Browse the archive",
    "Newsletter sign-up",
];

/// Deterministic pick helper.
pub fn pick<'a, R: rand::Rng>(rng: &mut R, pool: &'a [&'a str]) -> &'a str {
    pool[rng.gen_range(0..pool.len())]
}

/// Deterministic distinct sample of `n` items (n clamped to pool size).
pub fn sample<'a, R: rand::Rng>(rng: &mut R, pool: &'a [&'a str], n: usize) -> Vec<&'a str> {
    let n = n.min(pool.len());
    let mut indices: Vec<usize> = (0..pool.len()).collect();
    // Partial Fisher-Yates: shuffle only the prefix we need.
    for i in 0..n {
        let j = rng.gen_range(i..indices.len());
        indices.swap(i, j);
    }
    indices[..n].iter().map(|&i| pool[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn sample_is_distinct() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..50 {
            let s = sample(&mut rng, GENRES, 5);
            let mut d = s.clone();
            d.sort();
            d.dedup();
            assert_eq!(d.len(), s.len());
        }
    }

    #[test]
    fn sample_clamps_to_pool() {
        let mut rng = SmallRng::seed_from_u64(7);
        assert_eq!(sample(&mut rng, BRANDS, 100).len(), BRANDS.len());
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..20 {
            assert_eq!(pick(&mut a, MOVIE_TITLES), pick(&mut b, MOVIE_TITLES));
        }
    }
}
