//! Site drift: structural/labelling changes over time, used by the rule
//! maintenance experiment (§7: "the changes over time are not
//! automatically detected" — we implement the detection the paper
//! sketches and measure recovery on these drifted sites).

use crate::movie::MovieSiteSpec;
use crate::products::ProductSiteSpec;

/// Kinds of drift a site can undergo between crawls.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Drift {
    /// Labels renamed ("Runtime:" → "Length:") — breaks contextual rules.
    Relabel,
    /// Extra rows/wrappers inserted — breaks positional rules.
    Reposition,
    /// Both at once.
    Redesign,
}

/// Apply drift to a movie-site spec (same seed ⇒ same underlying facts,
/// different page structure).
pub fn drift_movie(base: &MovieSiteSpec, drift: Drift) -> MovieSiteSpec {
    let mut spec = base.clone();
    match drift {
        Drift::Relabel => spec.label_runtime = "Length:".to_string(),
        Drift::Reposition => {
            spec.extra_leading_rows = 2;
            spec.wrapper_depth += 1;
        }
        Drift::Redesign => {
            spec.label_runtime = "Length:".to_string();
            spec.extra_leading_rows = 2;
            spec.wrapper_depth += 1;
        }
    }
    spec
}

/// Apply drift to a product-site spec.
pub fn drift_products(base: &ProductSiteSpec, drift: Drift) -> ProductSiteSpec {
    let mut spec = base.clone();
    match drift {
        Drift::Relabel | Drift::Redesign => {
            spec.price_wrapped = true;
            spec.price_factor = 1.07;
        }
        Drift::Reposition => spec.price_wrapped = true,
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::movie::generate;

    #[test]
    fn facts_survive_reposition_drift() {
        let base = MovieSiteSpec { n_pages: 4, seed: 21, ..Default::default() };
        let drifted = drift_movie(&base, Drift::Reposition);
        let a = generate(&base);
        let b = generate(&drifted);
        for (pa, pb) in a.pages.iter().zip(&b.pages) {
            // Same facts (same seed), different markup.
            assert_eq!(pa.truth, pb.truth);
            assert_ne!(pa.html, pb.html);
        }
    }

    #[test]
    fn relabel_changes_label_only() {
        let base =
            MovieSiteSpec { n_pages: 2, seed: 22, p_missing_runtime: 0.0, ..Default::default() };
        let drifted = drift_movie(&base, Drift::Relabel);
        let b = generate(&drifted);
        assert!(b.pages[0].html.contains("Length:"));
        assert!(!b.pages[0].html.contains("Runtime:"));
        // Ground truth still calls the component "runtime".
        assert!(b.pages[0].truth.contains_key("runtime"));
    }

    #[test]
    fn redesign_combines_both() {
        let base = MovieSiteSpec { n_pages: 1, seed: 23, ..Default::default() };
        let d = drift_movie(&base, Drift::Redesign);
        assert_eq!(d.label_runtime, "Length:");
        assert_eq!(d.extra_leading_rows, 2);
        assert_eq!(d.wrapper_depth, base.wrapper_depth + 1);
    }
}
