//! # retroweb-sitegen — synthetic corpora with ground truth
//!
//! The paper's evaluation runs on 2006-era imdb.com pages, which no longer
//! exist. This crate generates deterministic synthetic clusters that
//! reproduce the discrepancy classes the paper analyses (§3.4): position
//! shifts from optional blocks, missing components, text/mixed format
//! variation and multivalued components — each behind an explicit knob —
//! plus machine-readable ground truth for every page.
//!
//! Three cluster families ([`movie`], [`products`], [`news`]), the paper's
//! exact four-page worked example ([`paper`]), and a drift model
//! ([`drift`]) for the rule-maintenance experiment.

use std::collections::BTreeMap;

pub mod data;
pub mod drift;
pub mod movie;
pub mod news;
pub mod paper;
pub mod products;

pub use drift::{drift_movie, drift_products, Drift};
pub use movie::{Layout, MovieSiteSpec, MOVIE_COMPONENTS};
pub use news::{NewsSiteSpec, NEWS_COMPONENTS};
pub use products::{ProductSiteSpec, PRODUCT_COMPONENTS};

/// Ground truth: component name → expected values in reading order.
pub type GroundTruth = BTreeMap<String, Vec<String>>;

/// One generated page: URL, HTML source, ground truth and the cluster it
/// belongs to (the label used when evaluating clustering).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Page {
    pub url: String,
    pub html: String,
    pub truth: GroundTruth,
    pub cluster: String,
}

impl Page {
    pub fn new(url: String, html: String, cluster: &str) -> Page {
        Page { url, html, truth: BTreeMap::new(), cluster: cluster.to_string() }
    }

    /// Record an expected component value (multivalued components call
    /// this once per value, in reading order).
    pub fn expect(&mut self, component: &str, value: &str) {
        self.truth.entry(component.to_string()).or_default().push(value.to_string());
    }

    /// Expected values for one component (empty slice when absent).
    pub fn expected(&self, component: &str) -> &[String] {
        self.truth.get(component).map(|v| v.as_slice()).unwrap_or(&[])
    }
}

/// A generated site: a named cluster of pages.
#[derive(Clone, Debug)]
pub struct Site {
    pub name: String,
    pub pages: Vec<Page>,
}

impl Site {
    /// The first `n` pages (the working sample of §3.1).
    pub fn sample(&self, n: usize) -> Vec<&Page> {
        self.pages.iter().take(n).collect()
    }
}

/// A mixed corpus spanning several ground-truth clusters, for the
/// clustering experiments (Figure 1 step 1).
pub fn mixed_corpus(seed: u64, per_cluster: usize) -> Vec<Page> {
    let movies =
        movie::generate(&MovieSiteSpec { n_pages: per_cluster, seed, ..Default::default() });
    let shop = products::generate(&ProductSiteSpec {
        n_pages: per_cluster,
        seed: seed + 1,
        ..Default::default()
    });
    let news = news::generate(&NewsSiteSpec {
        n_pages: per_cluster,
        seed: seed + 2,
        ..Default::default()
    });
    let mut pages = Vec::new();
    pages.extend(movies.pages);
    pages.extend(shop.pages);
    pages.extend(news.pages);
    // Interleave deterministically so clusters are not trivially contiguous.
    pages.sort_by(|a, b| {
        let ka = a.url.bytes().fold(0u64, |h, b| h.wrapping_mul(131).wrapping_add(b as u64));
        let kb = b.url.bytes().fold(0u64, |h, b| h.wrapping_mul(131).wrapping_add(b as u64));
        ka.cmp(&kb)
    });
    pages
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_corpus_has_three_clusters() {
        let pages = mixed_corpus(1, 5);
        assert_eq!(pages.len(), 15);
        let mut clusters: Vec<&str> = pages.iter().map(|p| p.cluster.as_str()).collect();
        clusters.sort();
        clusters.dedup();
        assert_eq!(clusters.len(), 3);
    }

    #[test]
    fn expected_returns_empty_for_missing() {
        let page = Page::new("u".into(), "<html></html>".into(), "c");
        assert!(page.expected("runtime").is_empty());
    }

    #[test]
    fn sample_takes_prefix() {
        let site = movie::generate(&MovieSiteSpec { n_pages: 10, seed: 1, ..Default::default() });
        assert_eq!(site.sample(3).len(), 3);
        assert_eq!(site.sample(3)[0].url, site.pages[0].url);
    }
}
