//! The imdb-like movie site generator.
//!
//! Reproduces the discrepancy classes the paper enumerates for the
//! imdb-movies cluster (§3.4): an optional "Also Known As:" block that
//! shifts positions (Figure 4), missing components, text/mixed format
//! variation, and multivalued components (genres, cast). Every knob is a
//! field on [`MovieSiteSpec`]; generation is deterministic in the seed.

use crate::data::{
    pick, sample, COUNTRIES, GENRES, LANGUAGES, MOVIE_TITLES, NOISE_SNIPPETS, PERSON_NAMES,
};
use crate::{Page, Site};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How movie facts are laid out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Layout {
    /// Figure-4 style: one `<td>` holding `<b>Label:</b> value <br>` runs —
    /// the "poorly structured (relatively flat)" shape of §7.
    Flat,
    /// One table row per fact — the "fine-grained HTML structure" shape.
    Rows,
}

/// Generator parameters for the movie cluster.
#[derive(Clone, Debug)]
pub struct MovieSiteSpec {
    pub n_pages: usize,
    pub seed: u64,
    pub layout: Layout,
    /// Probability of the optional "Also Known As:" fact (inserted right
    /// before the runtime — the paper's position-shift example).
    pub p_aka: f64,
    /// Probability that the runtime is absent from a page.
    pub p_missing_runtime: f64,
    /// Probability that the language fact is absent.
    pub p_missing_language: f64,
    /// Probability that the runtime value is mixed (`<i>108</i> min`);
    /// effective only in [`Layout::Rows`], where the value has its own cell.
    pub p_mixed_runtime: f64,
    /// Inclusive range for the number of genres.
    pub genres: (usize, usize),
    /// Inclusive range for the number of cast rows.
    pub actors: (usize, usize),
    /// Inclusive range for leading noise blocks (shift absolute positions).
    pub noise_blocks: (usize, usize),
    /// Extra `<div>` wrappers around the details block (depth knob, E7).
    pub wrapper_depth: usize,
    /// The runtime label; drifted sites relabel it ("Length:").
    pub label_runtime: String,
    /// Extra header rows at the top of the details table (drift knob).
    pub extra_leading_rows: usize,
    /// When false, [`Layout::Flat`] pages omit the `<b>Label:</b>`
    /// markers entirely — the degenerate "relatively flat" documents of
    /// §7, where values are bare sibling text nodes identified only by
    /// order (no stable context to anchor on).
    pub labeled: bool,
}

impl Default for MovieSiteSpec {
    fn default() -> Self {
        MovieSiteSpec {
            n_pages: 10,
            seed: 1,
            layout: Layout::Rows,
            p_aka: 0.3,
            p_missing_runtime: 0.15,
            p_missing_language: 0.25,
            p_mixed_runtime: 0.0,
            genres: (1, 4),
            actors: (2, 5),
            noise_blocks: (0, 2),
            wrapper_depth: 0,
            label_runtime: "Runtime:".to_string(),
            extra_leading_rows: 0,
            labeled: true,
        }
    }
}

/// Component names produced by this generator.
pub const MOVIE_COMPONENTS: &[&str] =
    &["title", "director", "aka", "runtime", "country", "language", "rating", "genre", "actor"];

pub fn generate(spec: &MovieSiteSpec) -> Site {
    let mut pages = Vec::with_capacity(spec.n_pages);
    for i in 0..spec.n_pages {
        pages.push(generate_page(spec, i));
    }
    Site { name: "imdb-movies".to_string(), pages }
}

fn range(rng: &mut SmallRng, (lo, hi): (usize, usize)) -> usize {
    if hi <= lo {
        lo
    } else {
        rng.gen_range(lo..=hi)
    }
}

fn generate_page(spec: &MovieSiteSpec, index: usize) -> Page {
    // Seed per page so pages are independent of how many precede them.
    let mut rng =
        SmallRng::seed_from_u64(spec.seed.wrapping_mul(0x9E37_79B9).wrapping_add(index as u64));
    let title = pick(&mut rng, MOVIE_TITLES);
    let year = 1960 + rng.gen_range(0..46);
    let director = pick(&mut rng, PERSON_NAMES);
    let runtime_min = 62 + rng.gen_range(0..120);
    let runtime = format!("{runtime_min} min");
    let has_runtime = !rng.gen_bool(spec.p_missing_runtime);
    let mixed_runtime =
        has_runtime && spec.layout == Layout::Rows && rng.gen_bool(spec.p_mixed_runtime);
    let has_aka = rng.gen_bool(spec.p_aka);
    let aka = format!("{title} Abroad (International: English title)");
    let country = pick(&mut rng, COUNTRIES);
    let has_language = !rng.gen_bool(spec.p_missing_language);
    let language = pick(&mut rng, LANGUAGES);
    let rating = format!("{}.{}/10", rng.gen_range(3..9), rng.gen_range(0..10));
    let n_genres = range(&mut rng, spec.genres);
    let genres = sample(&mut rng, GENRES, n_genres);
    let n_actors = range(&mut rng, spec.actors);
    let actors = sample(&mut rng, PERSON_NAMES, n_actors);

    let mut html = String::with_capacity(4096);
    html.push_str("<html><head><title>");
    html.push_str(&format!("{title} ({year})"));
    html.push_str("</title></head><body>\n");
    html.push_str(&format!(
        "<div class=\"header\"><h1>{title}</h1><span class=\"year\">{year}</span></div>\n"
    ));
    for _ in 0..range(&mut rng, spec.noise_blocks) {
        let snippet = pick(&mut rng, NOISE_SNIPPETS);
        html.push_str(&format!("<div class=\"noise\">{snippet}</div>\n"));
    }
    html.push_str("<div class=\"main\">\n");
    for _ in 0..spec.wrapper_depth {
        html.push_str("<div class=\"wrap\">");
    }

    // Facts in reading order; optional ones included per the flags above.
    struct Fact<'a> {
        label: &'a str,
        value: String,
        mixed: bool,
    }
    let mut facts: Vec<Fact> =
        vec![Fact { label: "Directed by:", value: director.to_string(), mixed: false }];
    if has_aka {
        facts.push(Fact { label: "Also Known As:", value: aka.clone(), mixed: false });
    }
    if has_runtime {
        facts.push(Fact {
            label: &spec.label_runtime,
            value: runtime.clone(),
            mixed: mixed_runtime,
        });
    }
    facts.push(Fact { label: "Country:", value: country.to_string(), mixed: false });
    if has_language {
        facts.push(Fact { label: "Language:", value: language.to_string(), mixed: false });
    }
    facts.push(Fact { label: "Rating:", value: rating.clone(), mixed: false });

    match spec.layout {
        Layout::Rows => {
            html.push_str("<table class=\"details\">\n");
            for _ in 0..spec.extra_leading_rows {
                html.push_str("<tr><td colspan=\"2\">Studio memo</td></tr>\n");
            }
            for fact in &facts {
                if fact.mixed {
                    // `<i>108</i> min` — text and markup in one cell.
                    let (num, unit) =
                        fact.value.split_once(' ').unwrap_or((fact.value.as_str(), ""));
                    html.push_str(&format!(
                        "<tr><td>{}</td><td><i>{num}</i> {unit}</td></tr>\n",
                        fact.label
                    ));
                } else {
                    html.push_str(&format!(
                        "<tr><td>{}</td><td>{}</td></tr>\n",
                        fact.label, fact.value
                    ));
                }
            }
            html.push_str("</table>\n");
        }
        Layout::Flat => {
            html.push_str(
                "<table class=\"details\"><tr><td class=\"side\">Movie facts</td></tr><tr><td>\n",
            );
            for _ in 0..spec.extra_leading_rows {
                html.push_str("<b>Studio memo:</b> archived <br>\n");
            }
            for fact in &facts {
                if spec.labeled {
                    html.push_str(&format!("<b>{}</b> {} <br>\n", fact.label, fact.value));
                } else {
                    html.push_str(&format!("{} <br>\n", fact.value));
                }
            }
            html.push_str("</td></tr></table>\n");
        }
    }

    html.push_str("<h3>Genres</h3><ul class=\"genres\">");
    for g in &genres {
        html.push_str(&format!("<li>{g}</li>"));
    }
    html.push_str("</ul>\n<h3>Cast</h3><table class=\"cast\">\n");
    for a in &actors {
        html.push_str(&format!("<tr><td>{a}</td></tr>\n"));
    }
    html.push_str("</table>\n");
    for _ in 0..spec.wrapper_depth {
        html.push_str("</div>");
    }
    html.push_str(
        "</div>\n<div class=\"footer\">Copyright 2006 The Movie Base</div>\n</body></html>\n",
    );

    let mut page = Page::new(
        format!("http://movies.example.org/title/tt{:07}/", 100_000 + index),
        html,
        "imdb-movies",
    );
    page.expect("title", title);
    page.expect("director", director);
    if has_aka {
        page.expect("aka", &aka);
    }
    if has_runtime {
        page.expect("runtime", &runtime);
    }
    page.expect("country", country);
    if has_language {
        page.expect("language", language);
    }
    page.expect("rating", &rating);
    for g in &genres {
        page.expect("genre", g);
    }
    for a in &actors {
        page.expect("actor", a);
    }
    page
}

#[cfg(test)]
mod tests {
    use super::*;
    use retroweb_html::parse;
    use retroweb_xpath::normalize_space;

    #[test]
    fn deterministic() {
        let spec = MovieSiteSpec { n_pages: 5, seed: 99, ..Default::default() };
        let a = generate(&spec);
        let b = generate(&spec);
        for (pa, pb) in a.pages.iter().zip(&b.pages) {
            assert_eq!(pa.html, pb.html);
            assert_eq!(pa.truth, pb.truth);
        }
    }

    #[test]
    fn truth_values_appear_in_page_text() {
        let spec =
            MovieSiteSpec { n_pages: 8, seed: 3, p_mixed_runtime: 0.5, ..Default::default() };
        for page in &generate(&spec).pages {
            let doc = parse(&page.html);
            let text = normalize_space(&doc.text_content(doc.root()));
            for (component, values) in &page.truth {
                for v in values {
                    assert!(
                        text.contains(v.as_str()),
                        "{} value '{v}' missing from {}",
                        component,
                        page.url
                    );
                }
            }
        }
    }

    #[test]
    fn optional_components_vary_across_pages() {
        let spec = MovieSiteSpec {
            n_pages: 40,
            seed: 11,
            p_missing_runtime: 0.4,
            p_aka: 0.4,
            ..Default::default()
        };
        let site = generate(&spec);
        let with_runtime = site.pages.iter().filter(|p| p.truth.contains_key("runtime")).count();
        let with_aka = site.pages.iter().filter(|p| p.truth.contains_key("aka")).count();
        assert!(with_runtime > 0 && with_runtime < 40);
        assert!(with_aka > 0 && with_aka < 40);
    }

    #[test]
    fn multivalued_components_have_multiple_values() {
        let spec = MovieSiteSpec {
            n_pages: 10,
            seed: 5,
            genres: (2, 4),
            actors: (3, 5),
            ..Default::default()
        };
        for page in &generate(&spec).pages {
            assert!(page.truth["genre"].len() >= 2);
            assert!(page.truth["actor"].len() >= 3);
        }
    }

    #[test]
    fn flat_layout_uses_label_runs() {
        let spec = MovieSiteSpec {
            n_pages: 3,
            seed: 8,
            layout: Layout::Flat,
            p_missing_runtime: 0.0,
            ..Default::default()
        };
        for page in &generate(&spec).pages {
            assert!(page.html.contains("<b>Runtime:</b>"));
            assert!(!page.html.contains("<tr><td>Runtime:</td>"));
        }
    }

    #[test]
    fn rows_layout_gives_each_fact_a_cell() {
        let spec = MovieSiteSpec {
            n_pages: 3,
            seed: 8,
            layout: Layout::Rows,
            p_missing_runtime: 0.0,
            ..Default::default()
        };
        for page in &generate(&spec).pages {
            assert!(page.html.contains("<tr><td>Runtime:</td><td>"));
        }
    }

    #[test]
    fn drift_knobs_change_structure() {
        let base = MovieSiteSpec { n_pages: 2, seed: 4, ..Default::default() };
        let drifted = MovieSiteSpec {
            label_runtime: "Length:".to_string(),
            extra_leading_rows: 2,
            ..base.clone()
        };
        let a = generate(&base);
        let b = generate(&drifted);
        assert!(b.pages[0].html.contains("Length:"));
        assert!(!a.pages[0].html.contains("Length:"));
        assert!(b.pages[0].html.contains("Studio memo"));
    }

    #[test]
    fn wrapper_depth_nests() {
        let spec = MovieSiteSpec { n_pages: 1, seed: 2, wrapper_depth: 3, ..Default::default() };
        let page = &generate(&spec).pages[0];
        assert_eq!(page.html.matches("<div class=\"wrap\">").count(), 3);
    }
}
