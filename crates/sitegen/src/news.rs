//! News-site generator: article pages with multivalued mixed-content
//! paragraphs and a comments section (the aggregation example of §4 uses
//! comments + rating → users-opinion).

use crate::data::{
    pick, COMMENT_SENTENCES, HEADLINE_OBJECTS, HEADLINE_SUBJECTS, HEADLINE_VERBS, PERSON_NAMES,
};
use crate::{Page, Site};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generator parameters for the news cluster.
#[derive(Clone, Debug)]
pub struct NewsSiteSpec {
    pub n_pages: usize,
    pub seed: u64,
    /// Probability that the byline carries a named author (otherwise the
    /// byline is "Staff report" and the component is absent).
    pub p_author: f64,
    /// Inclusive range for body paragraphs.
    pub paragraphs: (usize, usize),
    /// Inclusive range for reader comments.
    pub comments: (usize, usize),
}

impl Default for NewsSiteSpec {
    fn default() -> Self {
        NewsSiteSpec { n_pages: 10, seed: 1, p_author: 0.7, paragraphs: (2, 4), comments: (1, 4) }
    }
}

pub const NEWS_COMPONENTS: &[&str] =
    &["headline", "author", "date", "paragraph", "commenter", "comment"];

const MONTHS: &[&str] = &[
    "January",
    "February",
    "March",
    "April",
    "May",
    "June",
    "July",
    "August",
    "September",
    "October",
    "November",
    "December",
];

pub fn generate(spec: &NewsSiteSpec) -> Site {
    let mut pages = Vec::with_capacity(spec.n_pages);
    for i in 0..spec.n_pages {
        pages.push(generate_page(spec, i));
    }
    Site { name: "ledger-articles".to_string(), pages }
}

fn generate_page(spec: &NewsSiteSpec, index: usize) -> Page {
    let mut rng =
        SmallRng::seed_from_u64(spec.seed.wrapping_mul(0xA24B_AED4).wrapping_add(index as u64));
    let headline = format!(
        "{} {} {}",
        pick(&mut rng, HEADLINE_SUBJECTS),
        pick(&mut rng, HEADLINE_VERBS),
        pick(&mut rng, HEADLINE_OBJECTS)
    );
    let has_author = rng.gen_bool(spec.p_author);
    let author = pick(&mut rng, PERSON_NAMES);
    let date = format!(
        "{} {} {}",
        rng.gen_range(1..29),
        MONTHS[rng.gen_range(0..MONTHS.len())],
        2001 + rng.gen_range(0..6)
    );
    let n_paras = rng.gen_range(spec.paragraphs.0..=spec.paragraphs.1.max(spec.paragraphs.0));
    let n_comments = rng.gen_range(spec.comments.0..=spec.comments.1.max(spec.comments.0));

    let mut html = String::with_capacity(4096);
    html.push_str(&format!(
        "<html><head><title>{headline} - The Daily Ledger</title></head><body>\n\
         <div id=\"masthead\">The Daily Ledger</div>\n<div class=\"article\">\n<h1>{headline}</h1>\n"
    ));
    if has_author {
        html.push_str(&format!(
            "<div class=\"byline\">By <span class=\"who\">{author}</span> &mdash; <span class=\"when\">{date}</span></div>\n"
        ));
    } else {
        html.push_str(&format!(
            "<div class=\"byline\">Staff report &mdash; <span class=\"when\">{date}</span></div>\n"
        ));
    }

    let mut page = Page::new(
        format!("http://ledger.example.org/{}/story-{:04}.html", 2001 + index % 6, 1000 + index),
        String::new(),
        "ledger-articles",
    );
    page.expect("headline", &headline);
    if has_author {
        page.expect("author", author);
    }
    page.expect("date", &date);

    for p in 0..n_paras {
        // Mixed content: a bold lead-in inside the paragraph text.
        let lead = pick(&mut rng, HEADLINE_SUBJECTS);
        let tail = format!(
            "{} {} according to paragraph {} of the briefing.",
            pick(&mut rng, HEADLINE_VERBS),
            pick(&mut rng, HEADLINE_OBJECTS),
            p + 1
        );
        html.push_str(&format!("<p><b>{lead}</b> {tail}</p>\n"));
        page.expect("paragraph", &format!("{lead} {tail}"));
    }
    html.push_str("</div>\n<div class=\"comments\"><h4>Reader comments</h4>\n");
    for c in 0..n_comments {
        let who = pick(&mut rng, PERSON_NAMES);
        let text = format!("{} (comment {})", pick(&mut rng, COMMENT_SENTENCES), c + 1);
        html.push_str(&format!(
            "<div class=\"comment\"><span class=\"who\">{who}</span><p>{text}</p></div>\n"
        ));
        page.expect("commenter", who);
        page.expect("comment", &text);
    }
    html.push_str("</div>\n<div class=\"footer\">The Daily Ledger 2006</div>\n</body></html>\n");
    page.html = html;
    page
}

#[cfg(test)]
mod tests {
    use super::*;
    use retroweb_html::parse;
    use retroweb_xpath::normalize_space;

    #[test]
    fn truth_values_present() {
        let spec = NewsSiteSpec { n_pages: 6, seed: 5, ..Default::default() };
        for page in &generate(&spec).pages {
            let doc = parse(&page.html);
            let text = normalize_space(&doc.text_content(doc.root()));
            for values in page.truth.values() {
                for v in values {
                    assert!(text.contains(v.as_str()), "'{v}' not in {}", page.url);
                }
            }
        }
    }

    #[test]
    fn paragraphs_are_mixed_content() {
        let spec = NewsSiteSpec { n_pages: 2, seed: 5, ..Default::default() };
        let page = &generate(&spec).pages[0];
        assert!(page.html.contains("<p><b>"));
        // The truth value is the concatenated text, spanning the <b> split.
        let doc = parse(&page.html);
        let first_para = page.truth["paragraph"][0].clone();
        let found = doc
            .elements_by_tag("p")
            .iter()
            .any(|&p| normalize_space(&doc.text_content(p)) == first_para);
        assert!(found, "no <p> whose text is '{first_para}'");
    }

    #[test]
    fn author_optional() {
        let spec = NewsSiteSpec { n_pages: 30, seed: 6, p_author: 0.5, ..Default::default() };
        let site = generate(&spec);
        let with = site.pages.iter().filter(|p| p.truth.contains_key("author")).count();
        assert!(with > 0 && with < 30);
    }

    #[test]
    fn deterministic() {
        let spec = NewsSiteSpec { n_pages: 4, seed: 7, ..Default::default() };
        assert_eq!(generate(&spec).pages[2].html, generate(&spec).pages[2].html);
    }
}
