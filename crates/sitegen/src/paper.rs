//! The paper's exact worked example: the four-page imdb-movies working
//! sample behind Table 1 (candidate check: correct / correct / wrong /
//! void), Table 3 (all correct after refinement) and Figure 4 (the
//! contextual-information refinement).
//!
//! Page layout is the Figure 4 fragment embedded in a 7-row table so the
//! details cell sits at `TR[6]` — matching the paper's candidate XPath
//! `BODY//TR[6]/TD[1]/text()[1]` and the §2.3 rule display.

use crate::Page;

/// URIs exactly as printed in Table 1.
pub const PAPER_URIS: [&str; 4] =
    ["./title/tt0095159/", "./title/tt0071853/", "./title/tt0074103/", "./title/tt0102059/"];

/// The wrong value the candidate rule selects on page c (Table 1 row c).
pub const AKA_VALUE: &str = "The Wing and the Thigh (International: English title)";

fn build_page(uri: &str, nav_rows: usize, facts: &[(&str, &str)]) -> Page {
    let mut html = String::new();
    html.push_str("<html><head><title>imdb movie page</title></head><body>\n<table>\n");
    for i in 0..nav_rows {
        html.push_str(&format!("<tr><td>Nav section {}</td></tr>\n", i + 1));
    }
    html.push_str("<tr><td>");
    for (label, value) in facts {
        html.push_str(&format!("<b>{label}</b> {value} <br>"));
    }
    html.push_str("</td></tr>\n</table>\n</body></html>\n");

    let mut page = Page::new(uri.to_string(), html, "imdb-movies");
    for (label, value) in facts {
        let component = match *label {
            "Runtime:" => "runtime",
            "Country:" => "country",
            "Language:" => "language",
            "Also Known As:" => "aka",
            _ => continue,
        };
        page.expect(component, value);
    }
    page
}

/// The four-page working sample of Table 1/Table 3.
///
/// - page a (tt0095159): runtime `108 min` at the candidate position;
/// - page b (tt0071853): runtime `91 min` at the candidate position;
/// - page c (tt0074103): an "Also Known As:" block shifts the runtime, so
///   the candidate matches the AKA text (Table 1 row c, Figure 4 right);
/// - page d (tt0102059): one navigation row fewer, so `TR[6]` does not
///   exist and the candidate matches nothing (Table 1 row d).
pub fn paper_working_sample() -> Vec<Page> {
    vec![
        build_page(
            PAPER_URIS[0],
            5,
            &[
                ("Runtime:", "108 min"),
                ("Country:", "USA/UK"),
                ("Language:", "English/Italian/Russian"),
            ],
        ),
        build_page(
            PAPER_URIS[1],
            5,
            &[("Runtime:", "91 min"), ("Country:", "USA"), ("Language:", "English")],
        ),
        build_page(
            PAPER_URIS[2],
            5,
            &[("Also Known As:", AKA_VALUE), ("Runtime:", "104 min"), ("Country:", "France")],
        ),
        build_page(
            PAPER_URIS[3],
            4,
            &[("Runtime:", "84 min"), ("Country:", "Italy"), ("Language:", "Italian")],
        ),
    ]
}

/// The two pages of Figure 4 (left: runtime first; right: AKA shift) —
/// pages a and c of the working sample.
pub fn figure4_pages() -> (Page, Page) {
    let mut sample = paper_working_sample();
    let c = sample.remove(2);
    let a = sample.remove(0);
    (a, c)
}

/// Expected component values per page for `runtime` after refinement
/// (Table 3).
pub const TABLE3_RUNTIMES: [&str; 4] = ["108 min", "91 min", "104 min", "84 min"];

#[cfg(test)]
mod tests {
    use super::*;
    use retroweb_html::parse;
    use retroweb_xpath::{parse as xparse, Engine, Expr};

    #[test]
    fn candidate_path_reproduces_table1() {
        // The §2.3 candidate XPath, applied to each page of the sample.
        let sample = paper_working_sample();
        let xpath = xparse("/HTML[1]/BODY[1]/TABLE[1]/TR[6]/TD[1]/text()[1]").unwrap();
        let mut results = Vec::new();
        for page in &sample {
            let doc = parse(&page.html);
            let engine = Engine::new(&doc);
            let hits = engine.select(&xpath, doc.root()).unwrap();
            results.push(hits.first().map(|&n| doc.text(n).unwrap().trim().to_string()));
        }
        assert_eq!(results[0].as_deref(), Some("108 min")); // row a: correct
        assert_eq!(results[1].as_deref(), Some("91 min")); // row b: correct
        assert_eq!(results[2].as_deref(), Some(AKA_VALUE)); // row c: wrong value
        assert_eq!(results[3], None); // row d: void
    }

    #[test]
    fn refined_path_reproduces_table3() {
        // Contextual refinement with positions stripped from the TR step.
        let sample = paper_working_sample();
        let refined = xparse(
            "/HTML[1]/BODY[1]/TABLE[1]/TR/TD/text()[preceding::text()[normalize-space(.) != \"\"][1][contains(normalize-space(.), \"Runtime:\")]]",
        )
        .unwrap();
        for (page, expected) in sample.iter().zip(TABLE3_RUNTIMES) {
            let doc = parse(&page.html);
            let engine = Engine::new(&doc);
            let hits = engine.select(&refined, doc.root()).unwrap();
            assert_eq!(hits.len(), 1, "{}", page.url);
            assert_eq!(doc.text(hits[0]).unwrap().trim(), expected, "{}", page.url);
        }
    }

    #[test]
    fn figure4_pages_are_a_and_c() {
        let (left, right) = figure4_pages();
        assert!(left.html.contains("<b>Runtime:</b> 108 min"));
        assert!(right.html.contains("<b>Also Known As:</b>"));
        assert!(right.html.contains("<b>Runtime:</b> 104 min"));
    }

    #[test]
    fn ground_truth_matches_table3() {
        let sample = paper_working_sample();
        for (page, expected) in sample.iter().zip(TABLE3_RUNTIMES) {
            assert_eq!(page.truth["runtime"], vec![expected.to_string()]);
        }
    }

    #[test]
    fn details_cell_is_tr6_on_pages_abc_tr5_on_d() {
        let sample = paper_working_sample();
        for (i, page) in sample.iter().enumerate() {
            let doc = parse(&page.html);
            let engine = Engine::new(&doc);
            let trs = engine.select(&xparse("//TR").unwrap(), doc.root()).unwrap();
            let expected_rows = if i == 3 { 5 } else { 6 };
            assert_eq!(trs.len(), expected_rows, "{}", page.url);
        }
    }

    #[test]
    fn body_relative_display_matches_paper_shape() {
        // The candidate's display form used throughout §3.
        let e = xparse("BODY//TR[6]/TD[1]/text()[1]").unwrap();
        assert_eq!(e.to_string(), "BODY//TR[6]/TD[1]/text()[1]");
        assert!(matches!(e, Expr::Path(_)));
    }
}
