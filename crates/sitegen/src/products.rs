//! Product-catalog site generator (the intro's price-monitoring workload).

use crate::data::{pick, sample, BRANDS, FEATURES, NOISE_SNIPPETS, PRODUCT_NAMES};
use crate::{Page, Site};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generator parameters for the product cluster.
#[derive(Clone, Debug)]
pub struct ProductSiteSpec {
    pub n_pages: usize,
    pub seed: u64,
    /// Probability the availability block is present.
    pub p_availability: f64,
    /// Inclusive range for the number of feature bullets.
    pub features: (usize, usize),
    /// Multiplier applied to every price (drift knob for monitoring
    /// experiments: same structure, different values).
    pub price_factor: f64,
    /// When true the price `<div>` is wrapped in an extra `<span>` (drift
    /// knob that breaks positional paths but not contextual ones).
    pub price_wrapped: bool,
}

impl Default for ProductSiteSpec {
    fn default() -> Self {
        ProductSiteSpec {
            n_pages: 10,
            seed: 1,
            p_availability: 0.7,
            features: (2, 5),
            price_factor: 1.0,
            price_wrapped: false,
        }
    }
}

pub const PRODUCT_COMPONENTS: &[&str] =
    &["name", "brand", "price", "availability", "feature", "sku"];

pub fn generate(spec: &ProductSiteSpec) -> Site {
    let mut pages = Vec::with_capacity(spec.n_pages);
    for i in 0..spec.n_pages {
        pages.push(generate_page(spec, i));
    }
    Site { name: "shop-products".to_string(), pages }
}

fn generate_page(spec: &ProductSiteSpec, index: usize) -> Page {
    let mut rng =
        SmallRng::seed_from_u64(spec.seed.wrapping_mul(0x517C_C1B7).wrapping_add(index as u64));
    let name = pick(&mut rng, PRODUCT_NAMES);
    let brand = pick(&mut rng, BRANDS);
    let cents_base = 499 + rng.gen_range(0..19_500);
    let cents = ((cents_base as f64) * spec.price_factor).round() as i64;
    let price = format!("${}.{:02}", cents / 100, cents % 100);
    let has_avail = rng.gen_bool(spec.p_availability);
    let avail = format!("In stock: {} units", rng.gen_range(1..40));
    let n_features = rng.gen_range(spec.features.0..=spec.features.1.max(spec.features.0));
    let features = sample(&mut rng, FEATURES, n_features);
    let sku = format!("SKU-{:05}", 10_000 + rng.gen_range(0..80_000));

    let mut html = String::with_capacity(2048);
    html.push_str(&format!(
        "<html><head><title>{name} | Harbour Market</title></head><body>\n\
         <div id=\"nav\">{}</div>\n\
         <div class=\"product\">\n<h2>{name}</h2>\n\
         <div class=\"brand\">by <span>{brand}</span></div>\n",
        pick(&mut rng, NOISE_SNIPPETS)
    ));
    if spec.price_wrapped {
        html.push_str(&format!(
            "<div class=\"price\"><span class=\"amount\">{price}</span></div>\n"
        ));
    } else {
        html.push_str(&format!("<div class=\"price\">{price}</div>\n"));
    }
    if has_avail {
        html.push_str(&format!("<div class=\"avail\">{avail}</div>\n"));
    }
    html.push_str("<ul class=\"features\">");
    for f in &features {
        html.push_str(&format!("<li>{f}</li>"));
    }
    html.push_str("</ul>\n");
    html.push_str(&format!("<div class=\"sku\">Ref: <span>{sku}</span></div>\n"));
    html.push_str("</div>\n<div class=\"footer\">Harbour Market 2006</div>\n</body></html>\n");

    let mut page = Page::new(
        format!("http://shop.example.org/item/{}/", 5_000 + index),
        html,
        "shop-products",
    );
    page.expect("name", name);
    page.expect("brand", brand);
    page.expect("price", &price);
    if has_avail {
        page.expect("availability", &avail);
    }
    for f in &features {
        page.expect("feature", f);
    }
    page.expect("sku", &sku);
    page
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_distinct_urls() {
        let spec = ProductSiteSpec { n_pages: 6, seed: 2, ..Default::default() };
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.pages.len(), 6);
        for (pa, pb) in a.pages.iter().zip(&b.pages) {
            assert_eq!(pa.html, pb.html);
        }
        let mut urls: Vec<&str> = a.pages.iter().map(|p| p.url.as_str()).collect();
        urls.dedup();
        assert_eq!(urls.len(), 6);
    }

    #[test]
    fn price_factor_changes_values_not_structure() {
        let base = ProductSiteSpec { n_pages: 3, seed: 9, ..Default::default() };
        let raised = ProductSiteSpec { price_factor: 1.10, ..base.clone() };
        let a = generate(&base);
        let b = generate(&raised);
        for (pa, pb) in a.pages.iter().zip(&b.pages) {
            assert_ne!(pa.truth["price"], pb.truth["price"]);
            // Structure identical: strip digits and compare.
            let strip = |s: &str| s.chars().filter(|c| !c.is_ascii_digit()).collect::<String>();
            assert_eq!(strip(&pa.html), strip(&pb.html));
        }
    }

    #[test]
    fn price_wrapping_changes_structure() {
        let base = ProductSiteSpec { n_pages: 1, seed: 9, ..Default::default() };
        let wrapped = ProductSiteSpec { price_wrapped: true, ..base.clone() };
        assert!(generate(&wrapped).pages[0].html.contains("class=\"amount\""));
        assert!(!generate(&base).pages[0].html.contains("class=\"amount\""));
    }

    #[test]
    fn availability_is_optional() {
        let spec =
            ProductSiteSpec { n_pages: 30, seed: 4, p_availability: 0.5, ..Default::default() };
        let site = generate(&spec);
        let with = site.pages.iter().filter(|p| p.truth.contains_key("availability")).count();
        assert!(with > 0 && with < 30);
    }
}
