//! # retroweb-xml — extraction output substrate
//!
//! The XML side of the Retrozilla pipeline (§4 of the paper): an output
//! document model with a writer matching the paper's Figure 5 layout, an
//! XML Schema generator that maps mapping-rule properties to cardinality
//! constraints, and a strict reader so external agents (and our tests)
//! can consume the output.
//!
//! ```
//! use retroweb_xml::{XmlDocument, XmlElement};
//!
//! let mut root = XmlElement::new("imdb-movies");
//! let mut movie = XmlElement::new("imdb-movie").with_attr("uri", "http://imdb.com/title/tt0095159/");
//! movie.push_element(XmlElement::new("runtime").with_text("108 min"));
//! root.push_element(movie);
//! let doc = XmlDocument::new(root).with_encoding("ISO-8859-1");
//! assert!(doc.to_string_with(0).contains("<runtime>108 min</runtime>"));
//! ```

mod model;
mod reader;
mod schema;
mod writer;

pub use model::{escape_xml_attr, escape_xml_text, XmlDocument, XmlElement, XmlNode};
pub use reader::{parse_xml, XmlParseError};
pub use schema::{ClusterSchema, LeafContent, MaxOccurs, SchemaNode};
pub use writer::{stream_document, XmlStreamWriter};
