//! XML output model and writer.
//!
//! The extraction processor (§4 of the paper) produces an XML document
//! whose three-level default structure is cluster → page → component.
//! This model is a plain recursive tree with a writer tuned to match the
//! paper's Figure 5 layout (each element on its own line, text-only
//! elements inlined).

use std::fmt;

/// A node in an XML output tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum XmlNode {
    Element(XmlElement),
    Text(String),
}

impl XmlNode {
    pub fn as_element(&self) -> Option<&XmlElement> {
        match self {
            XmlNode::Element(el) => Some(el),
            _ => None,
        }
    }

    pub fn as_text(&self) -> Option<&str> {
        match self {
            XmlNode::Text(t) => Some(t),
            _ => None,
        }
    }
}

/// An XML element.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XmlElement {
    pub name: String,
    pub attrs: Vec<(String, String)>,
    pub children: Vec<XmlNode>,
}

impl XmlElement {
    pub fn new(name: &str) -> XmlElement {
        XmlElement { name: name.to_string(), attrs: Vec::new(), children: Vec::new() }
    }

    /// Builder-style attribute.
    pub fn with_attr(mut self, name: &str, value: &str) -> XmlElement {
        self.set_attr(name, value);
        self
    }

    /// Builder-style text content.
    pub fn with_text(mut self, text: &str) -> XmlElement {
        self.children.push(XmlNode::Text(text.to_string()));
        self
    }

    pub fn set_attr(&mut self, name: &str, value: &str) {
        if let Some(slot) = self.attrs.iter_mut().find(|(n, _)| n == name) {
            slot.1 = value.to_string();
        } else {
            self.attrs.push((name.to_string(), value.to_string()));
        }
    }

    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    pub fn push_element(&mut self, el: XmlElement) {
        self.children.push(XmlNode::Element(el));
    }

    pub fn push_text(&mut self, text: &str) {
        self.children.push(XmlNode::Text(text.to_string()));
    }

    /// Child elements only.
    pub fn elements(&self) -> impl Iterator<Item = &XmlElement> {
        self.children.iter().filter_map(XmlNode::as_element)
    }

    /// First child element with the given name.
    pub fn child(&self, name: &str) -> Option<&XmlElement> {
        self.elements().find(|el| el.name == name)
    }

    /// All child elements with the given name.
    pub fn children_named<'a>(
        &'a self,
        name: &'a str,
    ) -> impl Iterator<Item = &'a XmlElement> + 'a {
        self.elements().filter(move |el| el.name == name)
    }

    /// Concatenated text of all descendants.
    pub fn text_content(&self) -> String {
        let mut out = String::new();
        fn walk(el: &XmlElement, out: &mut String) {
            for c in &el.children {
                match c {
                    XmlNode::Text(t) => out.push_str(t),
                    XmlNode::Element(e) => walk(e, out),
                }
            }
        }
        walk(self, &mut out);
        out
    }

    fn is_text_only(&self) -> bool {
        self.children.iter().all(|c| matches!(c, XmlNode::Text(_)))
    }

    /// Serialise this element into `out` at the given indent level —
    /// the exact writer [`XmlDocument::to_string_with`] runs, exposed
    /// so incremental producers ([`crate::XmlStreamWriter`]) emit
    /// byte-identical fragments one element at a time.
    pub fn render_into(&self, out: &mut String, indent: usize, level: usize) {
        self.write(out, indent, level);
    }

    fn write(&self, out: &mut String, indent: usize, level: usize) {
        let pad = " ".repeat(indent * level);
        out.push_str(&pad);
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attrs {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_xml_attr(v));
            out.push('"');
        }
        if self.children.is_empty() {
            out.push_str("/>\n");
            return;
        }
        out.push('>');
        if self.is_text_only() {
            for c in &self.children {
                if let XmlNode::Text(t) = c {
                    out.push_str(&escape_xml_text(t));
                }
            }
        } else {
            out.push('\n');
            for c in &self.children {
                match c {
                    XmlNode::Element(el) => el.write(out, indent, level + 1),
                    XmlNode::Text(t) => {
                        let trimmed = t.trim();
                        if !trimmed.is_empty() {
                            out.push_str(&" ".repeat(indent * (level + 1)));
                            out.push_str(&escape_xml_text(trimmed));
                            out.push('\n');
                        }
                    }
                }
            }
            out.push_str(&pad);
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push_str(">\n");
    }
}

/// An XML document: declaration plus a root element.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XmlDocument {
    pub encoding: String,
    pub root: XmlElement,
}

impl XmlDocument {
    /// The paper's documents declare ISO-8859-1 (Figure 5); we emit UTF-8
    /// by default and ISO-8859-1 on request for byte-shape fidelity.
    pub fn new(root: XmlElement) -> XmlDocument {
        XmlDocument { encoding: "UTF-8".to_string(), root }
    }

    pub fn with_encoding(mut self, enc: &str) -> XmlDocument {
        self.encoding = enc.to_string();
        self
    }

    /// Serialise with the given indent width (0 reproduces Figure 5's
    /// flat layout: every element on its own line, no leading spaces).
    pub fn to_string_with(&self, indent: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!("<?xml version=\"1.0\" encoding=\"{}\"?>\n", self.encoding));
        self.root.write(&mut out, indent, 0);
        out
    }
}

impl fmt::Display for XmlDocument {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_with(2))
    }
}

impl fmt::Display for XmlElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, 2, 0);
        f.write_str(&out)
    }
}

/// Escape for XML text content.
pub fn escape_xml_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            c => out.push(c),
        }
    }
    out
}

/// Escape for a double-quoted XML attribute.
pub fn escape_xml_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '"' => out.push_str("&quot;"),
            '\n' => out.push_str("&#10;"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn movie_doc() -> XmlDocument {
        let mut root = XmlElement::new("imdb-movies");
        let mut movie =
            XmlElement::new("imdb-movie").with_attr("uri", "http://imdb.com/title/tt0095159/");
        movie.push_element(XmlElement::new("runtime").with_text("108 min"));
        root.push_element(movie);
        XmlDocument::new(root).with_encoding("ISO-8859-1")
    }

    #[test]
    fn figure5_flat_layout() {
        let doc = movie_doc();
        let expected = "<?xml version=\"1.0\" encoding=\"ISO-8859-1\"?>\n\
            <imdb-movies>\n\
            <imdb-movie uri=\"http://imdb.com/title/tt0095159/\">\n\
            <runtime>108 min</runtime>\n\
            </imdb-movie>\n\
            </imdb-movies>\n";
        assert_eq!(doc.to_string_with(0), expected);
    }

    #[test]
    fn indented_layout() {
        let doc = movie_doc();
        let s = doc.to_string_with(2);
        assert!(s.contains("\n  <imdb-movie"));
        assert!(s.contains("\n    <runtime>108 min</runtime>"));
    }

    #[test]
    fn empty_element_self_closes() {
        let el = XmlElement::new("runtime");
        assert_eq!(el.to_string(), "<runtime/>\n");
    }

    #[test]
    fn text_escaped() {
        let el = XmlElement::new("t").with_text("a < b & c");
        assert_eq!(el.to_string(), "<t>a &lt; b &amp; c</t>\n");
    }

    #[test]
    fn attr_escaped() {
        let el = XmlElement::new("t").with_attr("v", "say \"hi\" & <go>");
        assert!(el.to_string().contains("v=\"say &quot;hi&quot; &amp; &lt;go>\""));
    }

    #[test]
    fn accessors() {
        let doc = movie_doc();
        let movie = doc.root.child("imdb-movie").unwrap();
        assert_eq!(movie.attr("uri"), Some("http://imdb.com/title/tt0095159/"));
        assert_eq!(movie.child("runtime").unwrap().text_content(), "108 min");
        assert_eq!(doc.root.children_named("imdb-movie").count(), 1);
        assert!(movie.child("nope").is_none());
    }

    #[test]
    fn mixed_content_layout() {
        let mut el = XmlElement::new("m");
        el.push_text("before ");
        el.push_element(XmlElement::new("i").with_text("x"));
        let s = el.to_string();
        assert!(s.contains("<m>\n"));
        assert!(s.contains("before"));
        assert!(s.contains("<i>x</i>"));
    }
}
