//! A small, strict XML reader for round-trip tests and for external agents
//! that consume extraction output.

use crate::model::{XmlElement, XmlNode};
use std::fmt;

/// XML parse failure with byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XmlParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for XmlParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XmlParseError {}

/// Parse an XML document (declaration optional) into its root element.
pub fn parse_xml(input: &str) -> Result<XmlElement, XmlParseError> {
    let mut p = XmlParser { bytes: input.as_bytes(), input, pos: 0 };
    p.skip_misc()?;
    let root = p.element()?;
    p.skip_misc()?;
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after root element"));
    }
    Ok(root)
}

struct XmlParser<'a> {
    bytes: &'a [u8],
    input: &'a str,
    pos: usize,
}

impl<'a> XmlParser<'a> {
    fn err(&self, msg: &str) -> XmlParseError {
        XmlParseError { offset: self.pos, message: msg.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    /// Skip whitespace, the XML declaration, comments and PIs.
    fn skip_misc(&mut self) -> Result<(), XmlParseError> {
        loop {
            self.skip_ws();
            if self.input[self.pos..].starts_with("<?") {
                match self.input[self.pos..].find("?>") {
                    Some(i) => self.pos += i + 2,
                    None => return Err(self.err("unterminated processing instruction")),
                }
            } else if self.input[self.pos..].starts_with("<!--") {
                match self.input[self.pos..].find("-->") {
                    Some(i) => self.pos += i + 3,
                    None => return Err(self.err("unterminated comment")),
                }
            } else {
                return Ok(());
            }
        }
    }

    fn name(&mut self) -> Result<String, XmlParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected name"));
        }
        Ok(self.input[start..self.pos].to_string())
    }

    fn element(&mut self) -> Result<XmlElement, XmlParseError> {
        if self.peek() != Some(b'<') {
            return Err(self.err("expected '<'"));
        }
        self.pos += 1;
        let name = self.name()?;
        let mut el = XmlElement::new(&name);
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(self.err("expected '>' after '/'"));
                    }
                    self.pos += 1;
                    return Ok(el);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let attr_name = self.name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.err("expected '=' in attribute"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = match self.peek() {
                        Some(q @ (b'"' | b'\'')) => q,
                        _ => return Err(self.err("expected quoted attribute value")),
                    };
                    self.pos += 1;
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == quote {
                            break;
                        }
                        self.pos += 1;
                    }
                    if self.peek() != Some(quote) {
                        return Err(self.err("unterminated attribute value"));
                    }
                    let raw = &self.input[start..self.pos];
                    self.pos += 1;
                    el.set_attr(&attr_name, &decode_xml_entities(raw)?);
                }
                None => return Err(self.err("unexpected end of input in tag")),
            }
        }
        // Content.
        loop {
            if self.input[self.pos..].starts_with("</") {
                self.pos += 2;
                let close = self.name()?;
                if close != el.name {
                    return Err(self.err(&format!(
                        "mismatched end tag: expected </{}>, found </{}>",
                        el.name, close
                    )));
                }
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return Err(self.err("expected '>' in end tag"));
                }
                self.pos += 1;
                return Ok(el);
            }
            if self.input[self.pos..].starts_with("<!--") {
                match self.input[self.pos..].find("-->") {
                    Some(i) => {
                        self.pos += i + 3;
                        continue;
                    }
                    None => return Err(self.err("unterminated comment")),
                }
            }
            match self.peek() {
                Some(b'<') => {
                    let child = self.element()?;
                    el.push_element(child);
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'<' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let raw = &self.input[start..self.pos];
                    let text = decode_xml_entities(raw)?;
                    el.children.push(XmlNode::Text(text));
                }
                None => return Err(self.err("unexpected end of input in element content")),
            }
        }
    }
}

fn decode_xml_entities(s: &str) -> Result<String, XmlParseError> {
    if !s.contains('&') {
        return Ok(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        let semi = rest.find(';').ok_or(XmlParseError {
            offset: 0,
            message: "unterminated entity reference".to_string(),
        })?;
        let entity = &rest[1..semi];
        match entity {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let cp = u32::from_str_radix(&entity[2..], 16).map_err(|_| XmlParseError {
                    offset: 0,
                    message: format!("bad character reference &{entity};"),
                })?;
                out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
            }
            _ if entity.starts_with('#') => {
                let cp = entity[1..].parse::<u32>().map_err(|_| XmlParseError {
                    offset: 0,
                    message: format!("bad character reference &{entity};"),
                })?;
                out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
            }
            other => {
                return Err(XmlParseError {
                    offset: 0,
                    message: format!("unknown entity &{other};"),
                })
            }
        }
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::XmlDocument;

    #[test]
    fn parses_figure5_shape() {
        let src = "<?xml version=\"1.0\" encoding=\"ISO-8859-1\"?>\n\
            <imdb-movies>\n\
            <imdb-movie uri=\"http://imdb.com/title/tt0095159/\">\n\
            <runtime>108 min</runtime>\n\
            </imdb-movie>\n\
            </imdb-movies>\n";
        let root = parse_xml(src).unwrap();
        assert_eq!(root.name, "imdb-movies");
        let movie = root.child("imdb-movie").unwrap();
        assert_eq!(movie.attr("uri"), Some("http://imdb.com/title/tt0095159/"));
        assert_eq!(movie.child("runtime").unwrap().text_content(), "108 min");
    }

    #[test]
    fn writer_reader_round_trip() {
        let mut root = XmlElement::new("r");
        root.push_element(XmlElement::new("a").with_attr("k", "v & \"w\"").with_text("x < y"));
        root.push_element(XmlElement::new("empty"));
        let doc = XmlDocument::new(root.clone());
        let text = doc.to_string_with(2);
        let back = parse_xml(&text).unwrap();
        // Whitespace-only text nodes introduced by pretty-printing are the
        // only difference; compare structure modulo those.
        fn strip_ws(el: &XmlElement) -> XmlElement {
            let mut out = XmlElement::new(&el.name);
            out.attrs = el.attrs.clone();
            for c in &el.children {
                match c {
                    XmlNode::Element(e) => out.push_element(strip_ws(e)),
                    XmlNode::Text(t) => {
                        if !t.trim().is_empty() {
                            out.push_text(t.trim());
                        }
                    }
                }
            }
            out
        }
        assert_eq!(strip_ws(&back), strip_ws(&root));
    }

    #[test]
    fn self_closing() {
        let root = parse_xml("<a><b/><c /></a>").unwrap();
        assert_eq!(root.elements().count(), 2);
    }

    #[test]
    fn mismatched_tags_error() {
        assert!(parse_xml("<a><b></a></b>").is_err());
        assert!(parse_xml("<a>").is_err());
        assert!(parse_xml("<a></a><b></b>").is_err());
    }

    #[test]
    fn entity_decoding() {
        let root = parse_xml("<a>&lt;x&gt; &amp; &#65;&#x42;</a>").unwrap();
        assert_eq!(root.text_content(), "<x> & AB");
        assert!(parse_xml("<a>&bogus;</a>").is_err());
    }

    #[test]
    fn comments_skipped() {
        let root = parse_xml("<!-- head --><a><!-- inner -->x</a>").unwrap();
        assert_eq!(root.text_content(), "x");
    }
}
