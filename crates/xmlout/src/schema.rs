//! XML Schema (XSD) generation.
//!
//! §4 of the paper: "the name property of a mapping rule becomes the name
//! of an XML Schema element, while the optionality and multiplicity
//! properties are transformed into cardinality constraints in the target
//! structure". This module models that target structure and renders it to
//! an `xs:schema` document. The enhanced (aggregated) structure recorded
//! in the rule repository maps to nested [`SchemaNode::Group`]s.

use crate::model::{XmlDocument, XmlElement};

/// maxOccurs: 1 or unbounded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MaxOccurs {
    One,
    Unbounded,
}

/// Content model of a leaf component element.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LeafContent {
    /// `format = text` → xs:string content.
    Text,
    /// `format = mixed` → mixed content allowing inline markup remnants.
    Mixed,
}

/// One node of the target structure.
#[derive(Clone, Debug, PartialEq)]
pub enum SchemaNode {
    /// A leaf component: `<runtime>108 min</runtime>`.
    Leaf { name: String, min_occurs: u32, max_occurs: MaxOccurs, content: LeafContent },
    /// An aggregated group (a-posteriori aggregation, §4): e.g.
    /// `users-opinion` wrapping `comments` + `rating`.
    Group { name: String, min_occurs: u32, max_occurs: MaxOccurs, children: Vec<SchemaNode> },
}

impl SchemaNode {
    pub fn leaf(name: &str, optional: bool, multivalued: bool, mixed: bool) -> SchemaNode {
        SchemaNode::Leaf {
            name: name.to_string(),
            min_occurs: if optional { 0 } else { 1 },
            max_occurs: if multivalued { MaxOccurs::Unbounded } else { MaxOccurs::One },
            content: if mixed { LeafContent::Mixed } else { LeafContent::Text },
        }
    }

    pub fn group(name: &str, children: Vec<SchemaNode>) -> SchemaNode {
        SchemaNode::Group {
            name: name.to_string(),
            min_occurs: 1,
            max_occurs: MaxOccurs::One,
            children,
        }
    }

    pub fn name(&self) -> &str {
        match self {
            SchemaNode::Leaf { name, .. } | SchemaNode::Group { name, .. } => name,
        }
    }

    /// All leaf names in document order.
    pub fn leaf_names(&self) -> Vec<String> {
        let mut out = Vec::new();
        fn walk(n: &SchemaNode, out: &mut Vec<String>) {
            match n {
                SchemaNode::Leaf { name, .. } => out.push(name.clone()),
                SchemaNode::Group { children, .. } => {
                    for c in children {
                        walk(c, out);
                    }
                }
            }
        }
        walk(self, &mut out);
        out
    }

    fn to_xsd_element(&self) -> XmlElement {
        match self {
            SchemaNode::Leaf { name, min_occurs, max_occurs, content } => {
                let mut el = XmlElement::new("xs:element").with_attr("name", name);
                occurs_attrs(&mut el, *min_occurs, *max_occurs);
                match content {
                    LeafContent::Text => {
                        el.set_attr("type", "xs:string");
                    }
                    LeafContent::Mixed => {
                        let mut ct = XmlElement::new("xs:complexType").with_attr("mixed", "true");
                        let mut seq = XmlElement::new("xs:sequence");
                        let any = XmlElement::new("xs:any")
                            .with_attr("minOccurs", "0")
                            .with_attr("maxOccurs", "unbounded")
                            .with_attr("processContents", "lax");
                        seq.push_element(any);
                        ct.push_element(seq);
                        el.push_element(ct);
                    }
                }
                el
            }
            SchemaNode::Group { name, min_occurs, max_occurs, children } => {
                let mut el = XmlElement::new("xs:element").with_attr("name", name);
                occurs_attrs(&mut el, *min_occurs, *max_occurs);
                let mut ct = XmlElement::new("xs:complexType");
                let mut seq = XmlElement::new("xs:sequence");
                for c in children {
                    seq.push_element(c.to_xsd_element());
                }
                ct.push_element(seq);
                el.push_element(ct);
                el
            }
        }
    }
}

fn occurs_attrs(el: &mut XmlElement, min: u32, max: MaxOccurs) {
    if min != 1 {
        el.set_attr("minOccurs", &min.to_string());
    }
    match max {
        MaxOccurs::One => {}
        MaxOccurs::Unbounded => el.set_attr("maxOccurs", "unbounded"),
    }
}

/// The whole cluster schema: `<cluster>` containing repeated `<page>`
/// elements (each with a `uri` attribute), each holding the component
/// structure.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterSchema {
    /// Root element name — the cluster name (e.g. `imdb-movies`).
    pub cluster: String,
    /// Per-page element name (e.g. `imdb-movie`).
    pub page: String,
    /// Component structure inside each page element.
    pub components: Vec<SchemaNode>,
}

impl ClusterSchema {
    pub fn new(cluster: &str, page: &str, components: Vec<SchemaNode>) -> ClusterSchema {
        ClusterSchema { cluster: cluster.to_string(), page: page.to_string(), components }
    }

    /// Render as an `xs:schema` document.
    pub fn to_xsd(&self) -> XmlDocument {
        let mut schema = XmlElement::new("xs:schema")
            .with_attr("xmlns:xs", "http://www.w3.org/2001/XMLSchema")
            .with_attr("elementFormDefault", "qualified");

        let mut cluster_el = XmlElement::new("xs:element").with_attr("name", &self.cluster);
        let mut cluster_ct = XmlElement::new("xs:complexType");
        let mut cluster_seq = XmlElement::new("xs:sequence");

        let mut page_el = XmlElement::new("xs:element")
            .with_attr("name", &self.page)
            .with_attr("minOccurs", "0")
            .with_attr("maxOccurs", "unbounded");
        let mut page_ct = XmlElement::new("xs:complexType");
        let mut page_seq = XmlElement::new("xs:sequence");
        for c in &self.components {
            page_seq.push_element(c.to_xsd_element());
        }
        page_ct.push_element(page_seq);
        let uri_attr = XmlElement::new("xs:attribute")
            .with_attr("name", "uri")
            .with_attr("type", "xs:anyURI")
            .with_attr("use", "required");
        page_ct.push_element(uri_attr);
        page_el.push_element(page_ct);

        cluster_seq.push_element(page_el);
        cluster_ct.push_element(cluster_seq);
        cluster_el.push_element(cluster_ct);
        schema.push_element(cluster_el);
        XmlDocument::new(schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn imdb_schema() -> ClusterSchema {
        ClusterSchema::new(
            "imdb-movies",
            "imdb-movie",
            vec![
                SchemaNode::leaf("title", false, false, false),
                SchemaNode::leaf("runtime", true, false, false),
                SchemaNode::leaf("genre", true, true, false),
                SchemaNode::group(
                    "users-opinion",
                    vec![
                        SchemaNode::leaf("comments", true, true, true),
                        SchemaNode::leaf("rating", true, false, false),
                    ],
                ),
            ],
        )
    }

    #[test]
    fn cardinalities_map_to_occurs() {
        let xsd = imdb_schema().to_xsd();
        let text = xsd.to_string_with(2);
        // optional single-valued → minOccurs=0, no maxOccurs
        assert!(text.contains("<xs:element name=\"runtime\" minOccurs=\"0\" type=\"xs:string\"/>"));
        // mandatory single-valued → no occurs attrs
        assert!(text.contains("<xs:element name=\"title\" type=\"xs:string\"/>"));
        // optional multivalued → both
        assert!(text.contains("name=\"genre\" minOccurs=\"0\" maxOccurs=\"unbounded\""));
    }

    #[test]
    fn mixed_leaf_gets_mixed_complex_type() {
        let xsd = imdb_schema().to_xsd();
        let text = xsd.to_string_with(2);
        assert!(text.contains("mixed=\"true\""));
    }

    #[test]
    fn aggregation_nests_elements() {
        let xsd = imdb_schema().to_xsd().to_string_with(2);
        let opinion_pos = xsd.find("users-opinion").unwrap();
        let comments_pos = xsd.find("\"comments\"").unwrap();
        assert!(comments_pos > opinion_pos);
    }

    #[test]
    fn page_element_repeats_with_uri() {
        let xsd = imdb_schema().to_xsd().to_string_with(2);
        assert!(xsd.contains("name=\"imdb-movie\" minOccurs=\"0\" maxOccurs=\"unbounded\""));
        assert!(xsd.contains("xs:attribute"));
        assert!(xsd.contains("name=\"uri\""));
    }

    #[test]
    fn leaf_names_flatten_groups() {
        let schema = imdb_schema();
        let names: Vec<String> = schema.components.iter().flat_map(|c| c.leaf_names()).collect();
        assert_eq!(names, vec!["title", "runtime", "genre", "comments", "rating"]);
    }

    #[test]
    fn xsd_is_well_formed() {
        let text = imdb_schema().to_xsd().to_string_with(2);
        let parsed = crate::reader::parse_xml(&text).unwrap();
        assert_eq!(parsed.name, "xs:schema");
    }
}
