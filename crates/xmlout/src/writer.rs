//! Incremental XML document writer.
//!
//! [`XmlDocument::to_string_with`] materialises the whole tree before a
//! single byte leaves the process — fine for one page, O(batch) memory
//! for a cluster of thousands. [`XmlStreamWriter`] produces the *same
//! bytes* one root child at a time over any [`io::Write`]: the producer
//! hands over each child element as it becomes available, the buffer
//! never holds more than one child, and the document header / root
//! open-close framing is handled here (including the self-closing root
//! a childless document serialises to).
//!
//! The equivalence with the batch writer is structural, not aspirational:
//! both paths run [`XmlElement::render_into`], and a property test in
//! `retrozilla` holds the outputs byte-identical over arbitrary nested
//! structures.

use crate::model::{escape_xml_attr, XmlDocument, XmlElement};
use std::io;

/// Streams an XML document — declaration, root element, root children —
/// to an [`io::Write`], byte-identical to
/// [`XmlDocument::to_string_with`] on the equivalent tree.
///
/// Call order: [`begin`](XmlStreamWriter::begin) once, then
/// [`child`](XmlStreamWriter::child) per root child, then
/// [`finish`](XmlStreamWriter::finish) exactly once. The root open tag
/// is deferred to the first child so that a childless document
/// self-closes (`<root/>`), exactly like the tree writer.
#[derive(Debug)]
pub struct XmlStreamWriter<W: io::Write> {
    out: W,
    indent: usize,
    /// Root tag bytes (`name` + rendered attrs), captured at `begin`.
    root: Option<String>,
    /// Root open tag has been written (i.e. at least one child emitted).
    opened: bool,
    finished: bool,
    /// Reusable per-child render buffer; holds one child at a time.
    buf: String,
    bytes: u64,
}

impl<W: io::Write> XmlStreamWriter<W> {
    /// A writer emitting with the given indent width (0 reproduces the
    /// paper's Figure 5 flat layout, 2 the service layout).
    pub fn new(out: W, indent: usize) -> XmlStreamWriter<W> {
        XmlStreamWriter {
            out,
            indent,
            root: None,
            opened: false,
            finished: false,
            buf: String::new(),
            bytes: 0,
        }
    }

    /// Write the XML declaration and record the root element's tag. The
    /// root element itself may carry attributes; its children (if any)
    /// are ignored — they arrive through [`child`](XmlStreamWriter::child).
    pub fn begin(&mut self, encoding: &str, root: &XmlElement) -> io::Result<()> {
        assert!(self.root.is_none(), "begin called twice");
        self.buf.clear();
        self.buf.push_str(&format!("<?xml version=\"1.0\" encoding=\"{encoding}\"?>\n"));
        self.flush_buf()?;
        let mut tag = root.name.clone();
        for (k, v) in &root.attrs {
            tag.push(' ');
            tag.push_str(k);
            tag.push_str("=\"");
            tag.push_str(&escape_xml_attr(v));
            tag.push('"');
        }
        self.root = Some(tag);
        Ok(())
    }

    /// Emit one root child, opening the root element first if this is
    /// the first child.
    pub fn child(&mut self, el: &XmlElement) -> io::Result<()> {
        let root = self.root.as_ref().expect("begin before child");
        self.buf.clear();
        if !self.opened {
            self.buf.push('<');
            self.buf.push_str(root);
            self.buf.push_str(">\n");
            self.opened = true;
        }
        el.render_into(&mut self.buf, self.indent, 1);
        self.flush_buf()
    }

    /// Close the root element (or self-close it when no child was ever
    /// emitted) and flush the underlying writer.
    pub fn finish(&mut self) -> io::Result<()> {
        assert!(!self.finished, "finish called twice");
        let root = self.root.take().expect("begin before finish");
        self.finished = true;
        self.buf.clear();
        if self.opened {
            self.buf.push_str("</");
            // Close tag uses the bare name, not the attributed open tag.
            let name_end = root.find(' ').unwrap_or(root.len());
            self.buf.push_str(&root[..name_end]);
            self.buf.push_str(">\n");
        } else {
            self.buf.push('<');
            self.buf.push_str(&root);
            self.buf.push_str("/>\n");
        }
        self.flush_buf()?;
        self.out.flush()
    }

    /// Total bytes handed to the underlying writer so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    pub fn get_ref(&self) -> &W {
        &self.out
    }

    pub fn into_inner(self) -> W {
        self.out
    }

    fn flush_buf(&mut self) -> io::Result<()> {
        self.out.write_all(self.buf.as_bytes())?;
        self.bytes += self.buf.len() as u64;
        self.buf.clear();
        Ok(())
    }
}

/// Stream an already materialised document — a convenience used by the
/// differential tests; real streaming producers call the three-phase
/// API as results arrive.
pub fn stream_document<W: io::Write>(doc: &XmlDocument, indent: usize, out: W) -> io::Result<u64> {
    let mut w = XmlStreamWriter::new(out, indent);
    w.begin(&doc.encoding, &doc.root)?;
    for child in &doc.root.children {
        if let crate::model::XmlNode::Element(el) = child {
            w.child(el)?;
        }
    }
    w.finish()?;
    Ok(w.bytes_written())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::XmlNode;

    fn doc_with(children: usize) -> XmlDocument {
        let mut root = XmlElement::new("movies");
        for i in 0..children {
            let mut m = XmlElement::new("movie").with_attr("uri", &format!("u{i}"));
            m.push_element(XmlElement::new("title").with_text(&format!("T & {i} <x>")));
            if i % 2 == 0 {
                m.push_element(XmlElement::new("empty"));
            }
            root.push_element(m);
        }
        XmlDocument::new(root).with_encoding("ISO-8859-1")
    }

    #[test]
    fn matches_batch_writer_bytes() {
        for children in [0usize, 1, 3] {
            for indent in [0usize, 2, 4] {
                let doc = doc_with(children);
                let mut out = Vec::new();
                let n = stream_document(&doc, indent, &mut out).unwrap();
                let want = doc.to_string_with(indent);
                assert_eq!(String::from_utf8(out).unwrap(), want, "children={children}");
                assert_eq!(n, want.len() as u64);
            }
        }
    }

    #[test]
    fn empty_root_self_closes() {
        let mut out = Vec::new();
        let mut w = XmlStreamWriter::new(&mut out, 2);
        w.begin("UTF-8", &XmlElement::new("empty-cluster")).unwrap();
        w.finish().unwrap();
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<empty-cluster/>\n"
        );
    }

    #[test]
    fn root_attrs_survive_open_and_close() {
        let root = XmlElement::new("r").with_attr("k", "a \"b\"");
        let mut doc = XmlDocument::new(root.clone());
        doc.root.push_element(XmlElement::new("c"));
        let mut out = Vec::new();
        let mut w = XmlStreamWriter::new(&mut out, 2);
        w.begin(&doc.encoding, &root).unwrap();
        for child in &doc.root.children {
            if let XmlNode::Element(el) = child {
                w.child(el).unwrap();
            }
        }
        w.finish().unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), doc.to_string_with(2));
    }

    #[test]
    fn incremental_children_arrive_before_finish() {
        // The writer must emit bytes per child, not hold them all.
        struct CountWrites(usize);
        impl io::Write for CountWrites {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0 += 1;
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut w = XmlStreamWriter::new(CountWrites(0), 2);
        w.begin("UTF-8", &XmlElement::new("r")).unwrap();
        assert_eq!(w.get_ref().0, 1); // declaration flushed immediately
        w.child(&XmlElement::new("a")).unwrap();
        let after_first = w.get_ref().0;
        assert!(after_first >= 2, "first child flushed before finish");
        w.child(&XmlElement::new("b")).unwrap();
        assert!(w.get_ref().0 > after_first, "each child flushed independently");
        w.finish().unwrap();
    }
}
