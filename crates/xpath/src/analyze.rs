//! Static analysis of mapping-rule XPaths.
//!
//! `analyze` runs an abstract interpretation over an expression and emits
//! structured [`Diagnostic`]s: provably-empty steps (axis/node-test
//! contradictions, impossible step sequences), unsatisfiable positional
//! predicates, redundant union arms, and cost lints for unanchored scans
//! and reverse-axis walks. Spans point into the *display form* of the
//! expression (`expr.to_string()`, which is also [`CompiledXPath::source`]
//! — display/parse is a fixpoint, so that text is canonical).
//!
//! The abstract domain tracks the possible **node kinds** flowing through
//! a path: element-like (elements, the document root, doctype), text,
//! comment, attribute. Transfer functions mirror the executor's
//! `for_each_axis`/`test_matches`/`apply_preds` semantics exactly:
//! attribute nodes only yield on the parent/self/ancestor axes, text and
//! comment nodes are leaves (the HTML parser never attaches children or
//! attributes to them), and a positional predicate `[n]` selects nothing
//! unless `n` is an integer ≥ 1. Every emptiness claim is therefore a
//! theorem about the engines — held by the differential soundness suite
//! (`tests/analyze_proptests.rs`): an expression [`always_empty`] marks
//! must select zero nodes on arbitrary generated documents.

use crate::ast::{fmt_number, Axis, BinaryOp, Expr, LocationPath, NodeTest};
use crate::compile::CompiledXPath;
use std::fmt;

/// Diagnostic severity. `Error` means the rule provably cannot work
/// (selects nothing / a predicate can never hold); `Warn` flags dead or
/// pathological constructs; `Info` is advisory (cost notes).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Info,
    Warn,
    Error,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warn => "warn",
            Severity::Info => "info",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Every diagnostic code the analyzer (or the PUT-time parse gate) can
/// emit. Stable strings: metrics key per-code counters on this list.
pub const CODES: &[&str] = &[
    "empty-step",
    "empty-predicate",
    "unsat-position",
    "dead-alternative",
    "redundant-union",
    "nested-scan",
    "unanchored-scan",
    "reverse-walk",
    "unfused-fallback",
    "parse-error",
];

/// One analyzer finding.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// Stable code from [`CODES`].
    pub code: &'static str,
    pub severity: Severity,
    pub message: String,
    /// Byte range into the expression's display form, when attributable
    /// to a specific step/predicate/arm.
    pub span: Option<(usize, usize)>,
}

impl Diagnostic {
    fn new(code: &'static str, severity: Severity, message: String, span: (usize, usize)) -> Self {
        Diagnostic { code, severity, message, span: Some(span) }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] {}", self.severity, self.code, self.message)?;
        if let Some((s, e)) = self.span {
            write!(f, " (bytes {s}..{e})")?;
        }
        Ok(())
    }
}

// ---- abstract node kinds ----------------------------------------------------

/// Bit set of node kinds a value may contain. `ELEM` covers every
/// non-attr, non-text, non-comment node (elements, document root,
/// doctype) — an over-approximation is always sound here, since the
/// analyzer only ever claims anything when a set is provably *empty*.
type Kinds = u8;
const ELEM: Kinds = 1;
const TEXT: Kinds = 2;
const COMMENT: Kinds = 4;
const ATTR: Kinds = 8;
const ANY: Kinds = ELEM | TEXT | COMMENT | ATTR;
/// Top-level evaluation contexts are always tree nodes (`Engine::select`
/// et al. take a `NodeId`), never attribute refs.
const TOP: Kinds = ELEM | TEXT | COMMENT;

fn kinds_desc(k: Kinds) -> String {
    let mut parts = Vec::new();
    if k & ELEM != 0 {
        parts.push("element");
    }
    if k & TEXT != 0 {
        parts.push("text");
    }
    if k & COMMENT != 0 {
        parts.push("comment");
    }
    if k & ATTR != 0 {
        parts.push("attribute");
    }
    if parts.is_empty() {
        "no".to_string()
    } else {
        parts.join("/")
    }
}

/// Kinds reachable over `axis` from a context of kinds `ctx`, mirroring
/// the executor's `for_each_axis`.
fn axis_kinds(ctx: Kinds, axis: Axis) -> Kinds {
    let mut out = 0;
    if ctx & ATTR != 0 {
        // From an attribute node only parent/self/ancestor axes yield.
        out |= match axis {
            Axis::Parent | Axis::Ancestor => ELEM,
            Axis::SelfAxis => ATTR,
            Axis::AncestorOrSelf => ATTR | ELEM,
            _ => 0,
        };
    }
    for leaf in [TEXT, COMMENT] {
        if ctx & leaf != 0 {
            // Text/comment nodes are leaves: no children, descendants or
            // attributes.
            out |= match axis {
                Axis::Child | Axis::Descendant | Axis::Attribute => 0,
                Axis::DescendantOrSelf | Axis::SelfAxis => leaf,
                Axis::Parent | Axis::Ancestor => ELEM,
                Axis::AncestorOrSelf => leaf | ELEM,
                Axis::FollowingSibling
                | Axis::PrecedingSibling
                | Axis::Following
                | Axis::Preceding => ELEM | TEXT | COMMENT,
            };
        }
    }
    if ctx & ELEM != 0 {
        out |= match axis {
            Axis::Attribute => ATTR,
            Axis::Parent | Axis::Ancestor | Axis::AncestorOrSelf | Axis::SelfAxis => ELEM,
            _ => ELEM | TEXT | COMMENT,
        };
    }
    out
}

/// Kinds surviving a node test, mirroring `test_matches`: name and
/// wildcard tests match elements and attributes only; `text()` and
/// `comment()` never match attribute refs.
fn test_kinds(k: Kinds, test: &NodeTest) -> Kinds {
    match test {
        NodeTest::Name(_) | NodeTest::Wildcard => k & (ELEM | ATTR),
        NodeTest::Text => k & TEXT,
        NodeTest::Comment => k & COMMENT,
        NodeTest::Node => k,
    }
}

// ---- positional predicate classification ------------------------------------

/// What a predicate provably does to the survivor list.
#[derive(Clone, Copy, PartialEq)]
enum PredFact {
    /// Can never hold for any position ≥ 1 — the step selects nothing.
    Unsat,
    /// Selects at most one node (a specific position).
    AtMostOne(f64),
    /// Constant-false for reasons other than position.
    AlwaysFalse(&'static str),
}

fn is_position_call(e: &Expr) -> bool {
    matches!(e, Expr::Call(name, args) if name == "position" && args.is_empty())
}

/// Classify a predicate expression against `apply_preds` semantics.
fn classify_pred(e: &Expr) -> Option<PredFact> {
    match e {
        // A bare number selects by position: nothing survives unless it
        // is an integer ≥ 1.
        Expr::Number(n) => {
            if *n < 1.0 || n.fract() != 0.0 {
                Some(PredFact::Unsat)
            } else {
                Some(PredFact::AtMostOne(*n))
            }
        }
        // The empty string is falsy; `false()` is constant.
        Expr::Literal(s) if s.is_empty() => {
            Some(PredFact::AlwaysFalse("the empty string is always false"))
        }
        Expr::Call(name, args) if name == "false" && args.is_empty() => {
            Some(PredFact::AlwaysFalse("false() is constant"))
        }
        // position() compared against a constant.
        Expr::Binary(op, a, b) => {
            let (op, k) = if is_position_call(a) {
                match b.as_ref() {
                    Expr::Number(k) => (*op, *k),
                    _ => return None,
                }
            } else if is_position_call(b) {
                // k OP position()  ≡  position() FLIP(OP) k
                let flipped = match op {
                    BinaryOp::Lt => BinaryOp::Gt,
                    BinaryOp::Le => BinaryOp::Ge,
                    BinaryOp::Gt => BinaryOp::Lt,
                    BinaryOp::Ge => BinaryOp::Le,
                    other => *other,
                };
                match a.as_ref() {
                    Expr::Number(k) => (flipped, *k),
                    _ => return None,
                }
            } else {
                return None;
            };
            // position() ranges over 1..=last().
            match op {
                BinaryOp::Eq if k < 1.0 || k.fract() != 0.0 => Some(PredFact::Unsat),
                BinaryOp::Eq => Some(PredFact::AtMostOne(k)),
                BinaryOp::Lt if k <= 1.0 => Some(PredFact::Unsat),
                BinaryOp::Le if k < 1.0 => Some(PredFact::Unsat),
                _ => None,
            }
        }
        _ => None,
    }
}

fn is_scan_axis(axis: Axis) -> bool {
    matches!(axis, Axis::Descendant | Axis::DescendantOrSelf | Axis::Following | Axis::Preceding)
}

// ---- the analyzer -----------------------------------------------------------

struct Analyzer {
    /// Rendered display form; byte spans index into this. The renderer
    /// mirrors the `Display` impls, so `out == expr.to_string()`.
    out: String,
    diags: Vec<Diagnostic>,
    /// Predicate nesting depth (0 = top-level path steps).
    pred_depth: u32,
    /// Spans of the top-level union arms, in `union_alternatives` order.
    top_arm_spans: Vec<(usize, usize)>,
}

#[derive(Clone, Copy)]
struct StepInfo {
    axis: Axis,
    bounded: bool,
    span: (usize, usize),
}

impl Analyzer {
    fn push(&mut self, s: &str) {
        self.out.push_str(s);
    }

    fn diag(&mut self, code: &'static str, sev: Severity, msg: String, span: (usize, usize)) {
        self.diags.push(Diagnostic::new(code, sev, msg, span));
    }

    /// Render `e` exactly as `fmt_expr` would while analyzing it.
    /// Returns the abstract node-kind set when `e` is a node-set-valued
    /// path or union (`Some(0)` ⇒ provably empty), `None` otherwise.
    fn expr(&mut self, e: &Expr, parent_prec: u8, env: Kinds, top: bool) -> Option<Kinds> {
        if top && !matches!(e, Expr::Union(_, _)) {
            let start = self.out.len();
            let r = self.expr_inner(e, parent_prec, env, false);
            self.top_arm_spans.push((start, self.out.len()));
            return r;
        }
        self.expr_inner(e, parent_prec, env, top)
    }

    fn expr_inner(&mut self, e: &Expr, parent_prec: u8, env: Kinds, top: bool) -> Option<Kinds> {
        match e {
            Expr::Binary(op, a, b) => {
                let prec = op.precedence();
                let need_parens = prec < parent_prec;
                if need_parens {
                    self.push("(");
                }
                self.expr(a, prec, env, false);
                self.push(" ");
                self.push(op.symbol());
                self.push(" ");
                self.expr(b, prec + 1, env, false);
                if need_parens {
                    self.push(")");
                }
                None
            }
            Expr::Negate(inner) => {
                self.push("-");
                self.expr(inner, 7, env, false);
                None
            }
            Expr::Union(a, b) => {
                let need_parens = parent_prec >= 7;
                if need_parens {
                    self.push("(");
                }
                let ka = self.expr(a, 0, env, top);
                self.push(" | ");
                let kb = self.expr(b, 0, env, top);
                if need_parens {
                    self.push(")");
                }
                match (ka, kb) {
                    (Some(x), Some(y)) => Some(x | y),
                    _ => None,
                }
            }
            Expr::Path(p) => Some(self.path(p, env)),
            Expr::Filter { primary, predicates, path } => {
                self.expr(primary, 8, env, false);
                for pred in predicates {
                    self.push("[");
                    self.expr(pred, 0, ANY, false);
                    self.push("]");
                }
                if let Some(rest) = path {
                    self.push("/");
                    // The filter's node set could hold any kind (an
                    // attribute-selecting primary is legal).
                    self.path(rest, ANY);
                }
                None
            }
            Expr::Call(name, args) => {
                self.push(name);
                self.push("(");
                for (i, arg) in args.iter().enumerate() {
                    if i > 0 {
                        self.push(", ");
                    }
                    self.expr(arg, 0, env, false);
                }
                self.push(")");
                None
            }
            Expr::Literal(s) => {
                if s.contains('"') {
                    self.push("'");
                    self.push(s);
                    self.push("'");
                } else {
                    self.push("\"");
                    self.push(s);
                    self.push("\"");
                }
                None
            }
            Expr::Number(n) => {
                let t = fmt_number(*n);
                self.push(&t);
                None
            }
        }
    }

    /// Render a location path (mirroring `LocationPath`'s `Display`,
    /// including the `//`, `.` and `..` abbreviations) while walking the
    /// kind abstraction through its steps. Returns the result kinds
    /// (0 ⇒ the path provably selects nothing).
    fn path(&mut self, p: &LocationPath, env: Kinds) -> Kinds {
        let mut cur = if p.absolute { ELEM } else { env };
        let mut dead = cur == 0;
        let mut infos: Vec<StepInfo> = Vec::with_capacity(p.steps.len());
        if p.absolute {
            self.push("/");
        }
        let mut need_slash = false;
        let mut i = 0;
        while i < p.steps.len() {
            let step = &p.steps[i];
            let abbreviatable = step.axis == Axis::DescendantOrSelf
                && step.test == NodeTest::Node
                && step.predicates.is_empty()
                && i + 1 < p.steps.len()
                && (p.absolute || i > 0);
            if abbreviatable {
                // Render `//`; the abbreviated step still moves the
                // abstraction (descendant-or-self from an attribute node
                // selects nothing).
                let start = if i == 0 && p.absolute { self.out.len() - 1 } else { self.out.len() };
                if i == 0 && p.absolute {
                    self.push("/");
                } else {
                    self.push("//");
                }
                let span = (start, self.out.len());
                let next = axis_kinds(cur, Axis::DescendantOrSelf);
                if next == 0 && !dead {
                    self.diag(
                        "empty-step",
                        Severity::Error,
                        format!(
                            "'//' (descendant-or-self) selects nothing from a {} node",
                            kinds_desc(cur)
                        ),
                        span,
                    );
                    dead = true;
                }
                infos.push(StepInfo { axis: Axis::DescendantOrSelf, bounded: false, span });
                cur = next;
                need_slash = false;
                i += 1;
                continue;
            }
            if need_slash {
                self.push("/");
            }
            let start = self.out.len();
            let (next, bounded) = self.step(step, cur, dead, start);
            let span = (start, self.out.len());
            infos.push(StepInfo { axis: step.axis, bounded, span });
            if next == 0 && !dead {
                dead = true;
            }
            cur = next;
            need_slash = true;
            i += 1;
        }
        if !dead {
            self.cost_lints(p, &infos);
        }
        cur
    }

    /// Render one step and apply its transfer function. Returns the
    /// surviving kinds and whether a positional predicate bounds the
    /// walk. `dead` suppresses diagnostics on steps already known
    /// unreachable (one root cause, one report).
    fn step(
        &mut self,
        step: &crate::ast::Step,
        cur: Kinds,
        dead: bool,
        start: usize,
    ) -> (Kinds, bool) {
        // Abbreviations `.` and `..`.
        if step.predicates.is_empty() && step.test == NodeTest::Node {
            match step.axis {
                Axis::SelfAxis => {
                    self.push(".");
                    return (axis_kinds(cur, Axis::SelfAxis), false);
                }
                Axis::Parent => {
                    self.push("..");
                    return (axis_kinds(cur, Axis::Parent), false);
                }
                _ => {}
            }
        }
        match step.axis {
            Axis::Child => {}
            Axis::Attribute => self.push("@"),
            axis => {
                self.push(axis.name());
                self.push("::");
            }
        }
        let t = step.test.to_string();
        self.push(&t);
        let test_span = (start, self.out.len());

        let k1 = axis_kinds(cur, step.axis);
        let k2 = test_kinds(k1, &step.test);
        if !dead && cur != 0 {
            if k1 == 0 {
                self.diag(
                    "empty-step",
                    Severity::Error,
                    format!(
                        "axis '{}' selects nothing from a {} node",
                        step.axis.name(),
                        kinds_desc(cur)
                    ),
                    test_span,
                );
            } else if k2 == 0 {
                self.diag(
                    "empty-step",
                    Severity::Error,
                    format!(
                        "node test '{}' never matches a {} node (axis '{}')",
                        step.test,
                        kinds_desc(k1),
                        step.axis.name()
                    ),
                    test_span,
                );
            }
        }

        // Predicates: render each, track positional satisfiability.
        let analyzable = !dead && k2 != 0;
        let mut pos_bounded: Option<f64> = None;
        let mut bounded = false;
        let mut pred_dead = false;
        for pred in &step.predicates {
            self.push("[");
            let pstart = self.out.len();
            let before = self.diags.len();
            self.pred_depth += 1;
            // Candidates of this step are the predicate's context nodes.
            let inner = self.expr(pred, 0, k2.max(1), false);
            self.pred_depth -= 1;
            let pspan = (pstart - 1, self.out.len() + 1);
            self.push("]");
            if !analyzable || pred_dead {
                continue;
            }
            match classify_pred(pred) {
                Some(PredFact::Unsat) => {
                    self.diag(
                        "unsat-position",
                        Severity::Error,
                        "positional predicate can never hold: position() ranges over 1..=last()"
                            .to_string(),
                        pspan,
                    );
                    pred_dead = true;
                }
                Some(PredFact::AtMostOne(n)) => {
                    if let Some(prev) = pos_bounded {
                        if n != 1.0 {
                            self.diag(
                                "unsat-position",
                                Severity::Error,
                                format!(
                                    "contradictory positional chain: after [{}] at most one \
                                     node remains, so position {} never exists",
                                    fmt_number(prev),
                                    fmt_number(n)
                                ),
                                pspan,
                            );
                            pred_dead = true;
                        }
                    } else {
                        pos_bounded = Some(n);
                    }
                    bounded = true;
                }
                Some(PredFact::AlwaysFalse(why)) => {
                    self.diag(
                        "empty-predicate",
                        Severity::Error,
                        format!("predicate is constant false: {why}"),
                        pspan,
                    );
                    pred_dead = true;
                }
                None => {
                    // A bare path predicate that provably selects nothing
                    // is always false (empty node-set ⇒ falsy).
                    if matches!(pred, Expr::Path(_) | Expr::Union(_, _)) && inner == Some(0) {
                        if self.diags.len() == before {
                            self.diag(
                                "empty-predicate",
                                Severity::Error,
                                format!(
                                    "predicate path can never select a node from a {} node",
                                    kinds_desc(k2)
                                ),
                                pspan,
                            );
                        }
                        pred_dead = true;
                    }
                }
            }
        }
        (if pred_dead { 0 } else { k2 }, bounded)
    }

    /// Step-based cost estimates over a (live) path's steps.
    fn cost_lints(&mut self, p: &LocationPath, infos: &[StepInfo]) {
        let scans: Vec<&StepInfo> =
            infos.iter().filter(|s| is_scan_axis(s.axis) && !s.bounded).collect();
        if scans.len() >= 2 {
            let span = scans[1].span;
            self.diag(
                "nested-scan",
                Severity::Warn,
                format!(
                    "{} unbounded subtree scans in one path — worst case O(n^{}) in page size; \
                     anchor intermediate steps or add positional bounds",
                    scans.len(),
                    scans.len()
                ),
                span,
            );
        } else if scans.len() == 1
            && !p.absolute
            && is_scan_axis(infos[0].axis)
            && !infos[0].bounded
        {
            self.diag(
                "unanchored-scan",
                Severity::Info,
                format!(
                    "path opens with an unanchored '{}' scan from the context node — \
                     O(n) per evaluation",
                    infos[0].axis.name()
                ),
                infos[0].span,
            );
        }
        for s in infos {
            let heavy_reverse =
                matches!(s.axis, Axis::Preceding | Axis::Ancestor | Axis::AncestorOrSelf);
            if s.axis.is_reverse() && s.axis != Axis::Parent && !s.bounded {
                if self.pred_depth > 0 && heavy_reverse {
                    self.diag(
                        "reverse-walk",
                        Severity::Warn,
                        format!(
                            "unbounded '{}' walk inside a predicate runs once per candidate \
                             node — bound it with a positional predicate (e.g. [1])",
                            s.axis.name()
                        ),
                        s.span,
                    );
                } else if heavy_reverse {
                    self.diag(
                        "reverse-walk",
                        Severity::Info,
                        format!(
                            "'{}' walks everything before/above the context node — \
                             O(n) per evaluation",
                            s.axis.name()
                        ),
                        s.span,
                    );
                }
            }
        }
    }
}

/// Run all analysis passes over `expr`. Diagnostics carry byte spans
/// into the expression's display form (`expr.to_string()`).
pub fn analyze(expr: &Expr) -> Vec<Diagnostic> {
    let mut an = Analyzer {
        out: String::new(),
        diags: Vec::new(),
        pred_depth: 0,
        top_arm_spans: Vec::new(),
    };
    let kinds = an.expr(expr, 0, TOP, true);
    // Redundant union arms: alternatives are unioned, so an arm whose
    // node set is contained in an earlier arm's contributes nothing.
    let alts = expr.union_alternatives();
    if alts.len() > 1 && alts.len() == an.top_arm_spans.len() {
        for j in 1..alts.len() {
            for i in 0..j {
                if subsumes(alts[i], alts[j]) {
                    let span = an.top_arm_spans[j];
                    an.diag(
                        "redundant-union",
                        Severity::Warn,
                        format!(
                            "union arm {} adds no nodes: every node it selects is already \
                             selected by arm {}",
                            j + 1,
                            i + 1
                        ),
                        span,
                    );
                    break;
                }
            }
        }
    }
    // Whole-expression emptiness gets a top-span summary diagnostic when
    // no step-level diagnostic already explains it (e.g. a union of
    // individually-reported dead arms).
    if kinds == Some(0) && !an.diags.iter().any(|d| d.severity == Severity::Error) {
        let len = an.out.len();
        an.diag(
            "empty-step",
            Severity::Error,
            "expression provably selects no nodes".to_string(),
            (0, len),
        );
    }
    let mut diags = an.diags;
    // Spans are only valid if the mirrored renderer reproduced the
    // display form exactly; drop them (keeping the findings) otherwise.
    if an.out != expr.to_string() {
        debug_assert!(false, "analyzer renderer diverged from Display: {} vs {}", an.out, expr);
        for d in &mut diags {
            d.span = None;
        }
    }
    diags
}

/// Analyze a compiled program via its canonical source text. The display
/// form always reparses (display/parse fixpoint); a failure to do so is
/// reported as a `parse-error` diagnostic rather than a panic.
pub fn analyze_compiled(cx: &CompiledXPath) -> Vec<Diagnostic> {
    match crate::parser::parse(cx.source()) {
        Ok(expr) => analyze(&expr),
        Err(e) => vec![Diagnostic {
            code: "parse-error",
            severity: Severity::Error,
            message: format!("stored source does not reparse: {e}"),
            span: Some((e.offset(), e.offset())),
        }],
    }
}

/// True when the analyzer can prove `expr` selects zero nodes on every
/// document (the soundness-suite oracle). Errors during evaluation also
/// select nothing, so the claim is: `select_refs` never returns a
/// non-empty `Ok` for such an expression.
pub fn always_empty(expr: &Expr) -> bool {
    let mut an = Analyzer {
        out: String::new(),
        diags: Vec::new(),
        pred_depth: 0,
        top_arm_spans: Vec::new(),
    };
    an.expr(expr, 0, TOP, false) == Some(0)
}

/// Structural subsumption: every node `later` can select is also
/// selected by `earlier` (on any document, from any context). Holds when
/// the paths are step-for-step identical except that `earlier`'s
/// predicate list is a prefix of `later`'s on each step — appending
/// predicates only ever filters a step's result further. Used for
/// dead-alternative and redundant-union detection.
pub fn subsumes(earlier: &Expr, later: &Expr) -> bool {
    if earlier == later {
        return true;
    }
    let (Expr::Path(a), Expr::Path(b)) = (earlier, later) else {
        return false;
    };
    if a.absolute != b.absolute || a.steps.len() != b.steps.len() {
        return false;
    }
    a.steps.iter().zip(&b.steps).all(|(sa, sb)| {
        sa.axis == sb.axis
            && sa.test == sb.test
            && sa.predicates.len() <= sb.predicates.len()
            && sa.predicates == sb.predicates[..sa.predicates.len()]
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn diags(s: &str) -> Vec<Diagnostic> {
        analyze(&parse(s).unwrap())
    }

    fn codes(s: &str) -> Vec<&'static str> {
        diags(s).into_iter().map(|d| d.code).collect()
    }

    fn empty(s: &str) -> bool {
        always_empty(&parse(s).unwrap())
    }

    #[test]
    fn clean_expressions_have_no_diagnostics() {
        for s in [
            "/HTML[1]/BODY[1]/TABLE[3]/text()[1]",
            "//TR[6]/TD[1]/text()[1]",
            "BODY//TABLE[1]/TR[position()>=1]",
            "//text()[preceding::text()[normalize-space(.) != \"\"][1][contains(., \"x\")]]",
            "@href",
            "..",
            ".",
            "count(//TR) > 3",
        ] {
            assert!(diags(s).is_empty(), "{s}: {:?}", diags(s));
            assert!(!empty(s), "{s} wrongly marked empty");
        }
    }

    #[test]
    fn attribute_axis_then_child_is_empty() {
        let d = diags("@href/TD");
        assert_eq!(d[0].code, "empty-step");
        assert_eq!(d[0].severity, Severity::Error);
        assert!(empty("@href/TD"));
        // Span points at the second step in the display form.
        let shown = parse("@href/TD").unwrap().to_string();
        let (s, e) = d[0].span.unwrap();
        assert_eq!(&shown[s..e], "TD");
    }

    #[test]
    fn attribute_descendant_scan_is_empty() {
        assert!(codes("@href//x").contains(&"empty-step"));
        assert!(empty("@href//x"));
    }

    #[test]
    fn text_test_on_attribute_axis_is_empty() {
        assert!(codes("TR/@text()").contains(&"empty-step"));
        assert!(empty("TR/@text()"));
        // text nodes are leaves: no children or attributes.
        assert!(empty("text()/TD"));
        assert!(empty("//text()/@href"));
        assert!(empty("comment()/text()"));
    }

    #[test]
    fn unsatisfiable_positions() {
        assert!(codes("TR[0]").contains(&"unsat-position"));
        assert!(empty("TR[0]"));
        assert!(codes("TR[0.5]").contains(&"unsat-position"));
        assert!(codes("TR[position()=0]").contains(&"unsat-position"));
        assert!(codes("TR[position()<1]").contains(&"unsat-position"));
        assert!(codes("TR[1 > position()]").contains(&"unsat-position"));
        assert!(empty("TR[position()=0]"));
        // Satisfiable positional forms stay clean.
        assert!(diags("TR[1]").is_empty());
        assert!(diags("TR[position()=2]").is_empty());
        assert!(diags("TR[position()>1]").is_empty());
        assert!(diags("TR[last()]").is_empty());
    }

    #[test]
    fn contradictory_positional_chain() {
        assert!(codes("TR[1][2]").contains(&"unsat-position"));
        assert!(empty("TR[1][2]"));
        assert!(codes("TR[position()=3][2]").contains(&"unsat-position"));
        // [n][1] keeps the single survivor: satisfiable.
        assert!(diags("TR[2][1]").is_empty());
        assert!(!empty("TR[2][1]"));
    }

    #[test]
    fn empty_predicate_paths() {
        // The predicate path runs from this step's candidates — a text
        // node has no children, so [TD] can never hold on text(). The
        // inner step carries the precise diagnostic.
        let d = diags("//text()[TD]");
        assert!(d.iter().any(|x| x.severity == Severity::Error), "{d:?}");
        assert!(empty("//text()[TD]"));
        // From an attribute candidate, any child step predicate is dead.
        assert!(empty("TR/@href[B]"));
        assert!(diags("TR/@href[B]").iter().any(|x| x.severity == Severity::Error));
        // An element candidate with a child predicate is fine.
        assert!(diags("//TR[TD]").is_empty());
    }

    #[test]
    fn constant_false_predicates() {
        assert!(codes("TR[\"\"]").contains(&"empty-predicate"));
        assert!(empty("TR[\"\"]"));
        assert!(codes("TR[false()]").contains(&"empty-predicate"));
        // Non-empty literals are truthy, not flagged.
        assert!(diags("TR[\"x\"]").is_empty());
    }

    #[test]
    fn union_empty_only_when_all_arms_empty() {
        assert!(empty("@a/x | text()/y"));
        assert!(!empty("@a/x | //TD"));
        // Diagnostics still point at the dead arm.
        assert!(codes("@a/x | //TD").contains(&"empty-step"));
    }

    #[test]
    fn redundant_union_arm() {
        let d = diags("//TR/TD | //TR/TD[1]");
        assert!(d.iter().any(|x| x.code == "redundant-union"), "{d:?}");
        let d = diags("//TR | //TR");
        assert!(d.iter().any(|x| x.code == "redundant-union"));
        // Different arms are kept.
        assert!(diags("//TR[1] | //TR[2]").is_empty());
    }

    #[test]
    fn subsumption_rules() {
        let p = |s: &str| parse(s).unwrap();
        assert!(subsumes(&p("//TR/TD"), &p("//TR/TD")));
        assert!(subsumes(&p("//TR/TD"), &p("//TR/TD[1]")));
        assert!(subsumes(&p("//TR[TD]"), &p("//TR[TD][2]")));
        // Prefix must match exactly: different first predicate.
        assert!(!subsumes(&p("//TR[1]"), &p("//TR[2]")));
        // A predicate on the earlier arm does not subsume a bare later arm.
        assert!(!subsumes(&p("//TR[1]"), &p("//TR")));
        assert!(!subsumes(&p("/A/B"), &p("A/B")));
        assert!(!subsumes(&p("//TR"), &p("//TD")));
    }

    #[test]
    fn cost_lints() {
        let d = diags("//TABLE//TR//TD");
        assert!(d.iter().any(|x| x.code == "nested-scan" && x.severity == Severity::Warn), "{d:?}");
        let d = diags("descendant::DIV/x");
        assert!(d.iter().any(|x| x.code == "unanchored-scan"), "{d:?}");
        // The paper's label-anchor idiom is bounded by [1]: no warning.
        assert!(diags("//text()[preceding::text()[contains(., \"Runtime:\")][1]]").is_empty());
        // Unbounded reverse walk inside a predicate warns.
        let d = diags("//text()[preceding::text()[contains(., \"x\")]]");
        assert!(
            d.iter().any(|x| x.code == "reverse-walk" && x.severity == Severity::Warn),
            "{d:?}"
        );
        // Top-level ancestor walk is informational.
        let d = diags("//TD/ancestor::TABLE");
        assert!(
            d.iter().any(|x| x.code == "reverse-walk" && x.severity == Severity::Info),
            "{d:?}"
        );
    }

    #[test]
    fn spans_index_display_text() {
        let e = parse("//TR[0]/TD").unwrap();
        let shown = e.to_string();
        let d = analyze(&e);
        let unsat = d.iter().find(|x| x.code == "unsat-position").unwrap();
        let (s, t) = unsat.span.unwrap();
        assert_eq!(&shown[s..t], "[0]");
    }

    #[test]
    fn analyze_compiled_matches_ast_analysis() {
        for s in ["@href/TD", "//TR[0]", "//TABLE//TR//TD", "//TR/TD"] {
            let expr = parse(s).unwrap();
            let cx = CompiledXPath::compile(&expr);
            assert_eq!(analyze_compiled(&cx), analyze(&expr), "{s}");
        }
    }

    #[test]
    fn renderer_tracks_display_exactly() {
        // Exercised implicitly by every span assertion; double-check the
        // abbreviation-heavy shapes.
        for s in ["..//.", "./TR", "(//TABLE)[1]/TR", "-(//A | //B)", "a | b | c"] {
            let e = parse(s).unwrap();
            let _ = analyze(&e); // debug_assert inside catches divergence
        }
    }
}
