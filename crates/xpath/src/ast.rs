//! XPath 1.0 abstract syntax.
//!
//! The subset covers everything mapping rules need (§2.3 of the paper):
//! location paths with all major axes, positional and boolean predicates,
//! the core function library, unions (used for "alternative path"
//! refinement), and the full expression grammar for predicates.

use std::fmt;

/// Binary operators of the expression grammar.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinaryOp {
    Or,
    And,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl BinaryOp {
    pub fn symbol(self) -> &'static str {
        match self {
            BinaryOp::Or => "or",
            BinaryOp::And => "and",
            BinaryOp::Eq => "=",
            BinaryOp::Ne => "!=",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "div",
            BinaryOp::Mod => "mod",
        }
    }

    /// Precedence level; higher binds tighter. Used by the printer to
    /// decide where parentheses are required.
    pub fn precedence(self) -> u8 {
        match self {
            BinaryOp::Or => 1,
            BinaryOp::And => 2,
            BinaryOp::Eq | BinaryOp::Ne => 3,
            BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge => 4,
            BinaryOp::Add | BinaryOp::Sub => 5,
            BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => 6,
        }
    }
}

/// XPath axes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Axis {
    Child,
    Descendant,
    DescendantOrSelf,
    Parent,
    Ancestor,
    AncestorOrSelf,
    FollowingSibling,
    PrecedingSibling,
    Following,
    Preceding,
    SelfAxis,
    Attribute,
}

impl Axis {
    pub fn name(self) -> &'static str {
        match self {
            Axis::Child => "child",
            Axis::Descendant => "descendant",
            Axis::DescendantOrSelf => "descendant-or-self",
            Axis::Parent => "parent",
            Axis::Ancestor => "ancestor",
            Axis::AncestorOrSelf => "ancestor-or-self",
            Axis::FollowingSibling => "following-sibling",
            Axis::PrecedingSibling => "preceding-sibling",
            Axis::Following => "following",
            Axis::Preceding => "preceding",
            Axis::SelfAxis => "self",
            Axis::Attribute => "attribute",
        }
    }

    pub fn from_name(name: &str) -> Option<Axis> {
        Some(match name {
            "child" => Axis::Child,
            "descendant" => Axis::Descendant,
            "descendant-or-self" => Axis::DescendantOrSelf,
            "parent" => Axis::Parent,
            "ancestor" => Axis::Ancestor,
            "ancestor-or-self" => Axis::AncestorOrSelf,
            "following-sibling" => Axis::FollowingSibling,
            "preceding-sibling" => Axis::PrecedingSibling,
            "following" => Axis::Following,
            "preceding" => Axis::Preceding,
            "self" => Axis::SelfAxis,
            "attribute" => Axis::Attribute,
            _ => return None,
        })
    }

    /// Reverse axes order their nodes nearest-first (reverse document
    /// order); `position()` counts along that order.
    pub fn is_reverse(self) -> bool {
        matches!(
            self,
            Axis::Parent
                | Axis::Ancestor
                | Axis::AncestorOrSelf
                | Axis::PrecedingSibling
                | Axis::Preceding
        )
    }
}

/// Node tests.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum NodeTest {
    /// Element (or attribute) name test. Matching is ASCII
    /// case-insensitive, mirroring an HTML DOM (the paper writes `BODY`,
    /// `TR`, `TD`).
    Name(String),
    /// `*`
    Wildcard,
    /// `text()`
    Text,
    /// `comment()`
    Comment,
    /// `node()`
    Node,
}

/// One location step: `axis::test[pred1][pred2]…`.
#[derive(Clone, Debug, PartialEq)]
pub struct Step {
    pub axis: Axis,
    pub test: NodeTest,
    pub predicates: Vec<Expr>,
}

impl Step {
    pub fn new(axis: Axis, test: NodeTest) -> Step {
        Step { axis, test, predicates: Vec::new() }
    }

    /// `child::NAME[pos]` — the shape emitted by the precise-path builder.
    pub fn child_name(name: &str, pos: Option<f64>) -> Step {
        let mut step = Step::new(Axis::Child, NodeTest::Name(name.to_string()));
        if let Some(p) = pos {
            step.predicates.push(Expr::Number(p));
        }
        step
    }

    /// `child::text()[pos]`.
    pub fn child_text(pos: Option<f64>) -> Step {
        let mut step = Step::new(Axis::Child, NodeTest::Text);
        if let Some(p) = pos {
            step.predicates.push(Expr::Number(p));
        }
        step
    }

    /// The first numeric (positional) predicate, if any.
    pub fn position_predicate(&self) -> Option<f64> {
        self.predicates.iter().find_map(|p| match p {
            Expr::Number(n) => Some(*n),
            _ => None,
        })
    }

    /// Remove all bare numeric predicates, keeping the rest.
    pub fn without_position(&self) -> Step {
        Step {
            axis: self.axis,
            test: self.test.clone(),
            predicates: self
                .predicates
                .iter()
                .filter(|p| !matches!(p, Expr::Number(_)))
                .cloned()
                .collect(),
        }
    }
}

/// A location path: optional leading `/`, then steps.
#[derive(Clone, Debug, PartialEq)]
pub struct LocationPath {
    pub absolute: bool,
    pub steps: Vec<Step>,
}

impl LocationPath {
    pub fn absolute(steps: Vec<Step>) -> LocationPath {
        LocationPath { absolute: true, steps }
    }

    pub fn relative(steps: Vec<Step>) -> LocationPath {
        LocationPath { absolute: false, steps }
    }
}

/// Any XPath expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    Negate(Box<Expr>),
    /// `a | b` — node-set union, used to encode alternative paths.
    Union(Box<Expr>, Box<Expr>),
    Path(LocationPath),
    /// `primary[preds]/rest…` — a filtered primary expression with an
    /// optional trailing relative path.
    Filter {
        primary: Box<Expr>,
        predicates: Vec<Expr>,
        path: Option<LocationPath>,
    },
    Call(String, Vec<Expr>),
    Literal(String),
    Number(f64),
}

impl Expr {
    /// Convenience: wrap a path.
    pub fn path(path: LocationPath) -> Expr {
        Expr::Path(path)
    }

    /// Collect the alternatives of a (possibly nested) union, left to
    /// right. A non-union expression yields itself.
    pub fn union_alternatives(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
            match e {
                Expr::Union(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// Build a union of several expressions (left-assoc). Panics on empty.
    pub fn union_of(mut exprs: Vec<Expr>) -> Expr {
        assert!(!exprs.is_empty());
        let first = exprs.remove(0);
        exprs.into_iter().fold(first, |acc, e| Expr::Union(Box::new(acc), Box::new(e)))
    }
}

// ---- printing ---------------------------------------------------------------

pub(crate) fn fmt_number(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1.0e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

impl fmt::Display for NodeTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeTest::Name(n) => f.write_str(n),
            NodeTest::Wildcard => f.write_str("*"),
            NodeTest::Text => f.write_str("text()"),
            NodeTest::Comment => f.write_str("comment()"),
            NodeTest::Node => f.write_str("node()"),
        }
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.axis, &self.test, self.predicates.is_empty()) {
            (Axis::SelfAxis, NodeTest::Node, true) => return f.write_str("."),
            (Axis::Parent, NodeTest::Node, true) => return f.write_str(".."),
            _ => {}
        }
        match self.axis {
            Axis::Child => {}
            Axis::Attribute => f.write_str("@")?,
            axis => {
                f.write_str(axis.name())?;
                f.write_str("::")?;
            }
        }
        write!(f, "{}", self.test)?;
        for pred in &self.predicates {
            write!(f, "[{pred}]")?;
        }
        Ok(())
    }
}

impl fmt::Display for LocationPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.absolute {
            f.write_str("/")?;
        }
        // `need_slash` tracks whether a separator is required before the
        // next printed step.
        let mut need_slash = false;
        let mut i = 0;
        while i < self.steps.len() {
            let step = &self.steps[i];
            // Print `descendant-or-self::node()` followed by a step as `//`
            // — except at the start of a relative path, where bare `//`
            // would change the meaning.
            let abbreviatable = step.axis == Axis::DescendantOrSelf
                && step.test == NodeTest::Node
                && step.predicates.is_empty()
                && i + 1 < self.steps.len()
                && (self.absolute || i > 0);
            if abbreviatable {
                if i == 0 && self.absolute {
                    f.write_str("/")?; // together with the leading '/': `//`
                } else {
                    f.write_str("//")?;
                }
                need_slash = false;
                i += 1;
                continue;
            }
            if need_slash {
                f.write_str("/")?;
            }
            write!(f, "{step}")?;
            need_slash = true;
            i += 1;
        }
        Ok(())
    }
}

fn fmt_expr(e: &Expr, f: &mut fmt::Formatter<'_>, parent_prec: u8) -> fmt::Result {
    match e {
        Expr::Binary(op, a, b) => {
            let prec = op.precedence();
            let need_parens = prec < parent_prec;
            if need_parens {
                f.write_str("(")?;
            }
            fmt_expr(a, f, prec)?;
            write!(f, " {} ", op.symbol())?;
            // Left-associative: the right operand needs strictly higher
            // precedence to avoid parentheses.
            fmt_expr(b, f, prec + 1)?;
            if need_parens {
                f.write_str(")")?;
            }
            Ok(())
        }
        Expr::Negate(inner) => {
            f.write_str("-")?;
            fmt_expr(inner, f, 7)
        }
        Expr::Union(a, b) => {
            // Union binds loosest among the path-level operators; only a
            // unary-minus parent (precedence 7) forces parentheses.
            let need_parens = parent_prec >= 7;
            if need_parens {
                f.write_str("(")?;
            }
            fmt_expr(a, f, 0)?;
            f.write_str(" | ")?;
            fmt_expr(b, f, 0)?;
            if need_parens {
                f.write_str(")")?;
            }
            Ok(())
        }
        Expr::Path(p) => write!(f, "{p}"),
        Expr::Filter { primary, predicates, path } => {
            fmt_expr(primary, f, 8)?;
            for pred in predicates {
                write!(f, "[{pred}]")?;
            }
            if let Some(rest) = path {
                write!(f, "/{rest}")?;
            }
            Ok(())
        }
        Expr::Call(name, args) => {
            write!(f, "{name}(")?;
            for (i, arg) in args.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                fmt_expr(arg, f, 0)?;
            }
            f.write_str(")")
        }
        Expr::Literal(s) => {
            if s.contains('"') {
                write!(f, "'{s}'")
            } else {
                write!(f, "\"{s}\"")
            }
        }
        Expr::Number(n) => f.write_str(&fmt_number(*n)),
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_expr(self, f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_precise_path() {
        let path = LocationPath::absolute(vec![
            Step::child_name("HTML", Some(1.0)),
            Step::child_name("BODY", Some(1.0)),
            Step::child_name("TABLE", Some(3.0)),
            Step::child_text(Some(1.0)),
        ]);
        assert_eq!(path.to_string(), "/HTML[1]/BODY[1]/TABLE[3]/text()[1]");
    }

    #[test]
    fn display_double_slash() {
        let path = LocationPath::absolute(vec![
            Step::child_name("BODY", None),
            Step::new(Axis::DescendantOrSelf, NodeTest::Node),
            Step::child_name("TR", Some(6.0)),
        ]);
        assert_eq!(path.to_string(), "/BODY//TR[6]");
    }

    #[test]
    fn display_dot_and_dotdot() {
        assert_eq!(Step::new(Axis::SelfAxis, NodeTest::Node).to_string(), ".");
        assert_eq!(Step::new(Axis::Parent, NodeTest::Node).to_string(), "..");
    }

    #[test]
    fn display_predicates_and_functions() {
        let pred = Expr::Call(
            "contains".into(),
            vec![
                Expr::Path(LocationPath::relative(vec![Step::new(Axis::SelfAxis, NodeTest::Node)])),
                Expr::Literal("Runtime:".into()),
            ],
        );
        let mut step = Step::child_text(None);
        step.predicates.push(pred);
        assert_eq!(step.to_string(), "text()[contains(., \"Runtime:\")]");
    }

    #[test]
    fn display_binary_precedence() {
        let e = Expr::Binary(
            BinaryOp::Mul,
            Box::new(Expr::Binary(
                BinaryOp::Add,
                Box::new(Expr::Number(1.0)),
                Box::new(Expr::Number(2.0)),
            )),
            Box::new(Expr::Number(3.0)),
        );
        assert_eq!(e.to_string(), "(1 + 2) * 3");
    }

    #[test]
    fn union_alternatives_flatten() {
        let a = Expr::Number(1.0);
        let b = Expr::Number(2.0);
        let c = Expr::Number(3.0);
        let u = Expr::union_of(vec![a.clone(), b.clone(), c.clone()]);
        let alts = u.union_alternatives();
        assert_eq!(alts, vec![&a, &b, &c]);
    }

    #[test]
    fn position_predicate_helpers() {
        let step = Step::child_name("TR", Some(6.0));
        assert_eq!(step.position_predicate(), Some(6.0));
        let bare = step.without_position();
        assert!(bare.predicates.is_empty());
        assert_eq!(bare.to_string(), "TR");
    }

    #[test]
    fn literal_with_quotes() {
        assert_eq!(Expr::Literal("it\"s".into()).to_string(), "'it\"s'");
        assert_eq!(Expr::Literal("plain".into()).to_string(), "\"plain\"");
    }
}
