//! Precise-path generation — the automatic half of "selection" (§3.2).
//!
//! When the user points at a component value in a rendered page, Retrozilla
//! computes "a precise XPath expression, i.e., an XPath where each HTML
//! element is associated with its parent-relative position, leading to the
//! focused value". [`precise_path`] is that computation: a location path of
//! `child::NAME[k]` / `child::text()[k]` steps from the document root.

use crate::ast::{Expr, LocationPath, NodeTest, Step};
use retroweb_html::{Document, NodeData, NodeId};
use std::fmt;

/// Failure to build a path (detached node or unsupported node kind).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BuildError {
    pub message: String,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "precise-path error: {}", self.message)
    }
}

impl std::error::Error for BuildError {}

/// Build the absolute precise path of `target`.
///
/// The resulting path evaluates (from any context) to exactly `{target}`:
/// this invariant is what makes rule checking meaningful and is enforced
/// by property tests.
pub fn precise_path(doc: &Document, target: NodeId) -> Result<LocationPath, BuildError> {
    let steps = steps_to(doc, target, doc.root())?;
    Ok(LocationPath::absolute(steps))
}

/// Build a precise path relative to `ancestor` (which must be an ancestor
/// of `target` or `target` itself — the latter yields `.`).
pub fn precise_path_from(
    doc: &Document,
    target: NodeId,
    ancestor: NodeId,
) -> Result<LocationPath, BuildError> {
    if target == ancestor {
        return Ok(LocationPath::relative(vec![Step::new(
            crate::ast::Axis::SelfAxis,
            NodeTest::Node,
        )]));
    }
    if !doc.is_ancestor_of(ancestor, target) {
        return Err(BuildError {
            message: "context node is not an ancestor of the target".to_string(),
        });
    }
    let steps = steps_to(doc, target, ancestor)?;
    Ok(LocationPath::relative(steps))
}

fn steps_to(doc: &Document, target: NodeId, top: NodeId) -> Result<Vec<Step>, BuildError> {
    let mut rev_steps = Vec::new();
    let mut cur = target;
    while cur != top {
        let parent = doc.parent(cur).ok_or_else(|| BuildError {
            message: format!("node {cur} is detached from the tree"),
        })?;
        rev_steps.push(step_for(doc, cur)?);
        cur = parent;
    }
    rev_steps.reverse();
    Ok(rev_steps)
}

/// The `child::…[k]` step locating `node` among its siblings.
fn step_for(doc: &Document, node: NodeId) -> Result<Step, BuildError> {
    match &doc.node(node).data {
        NodeData::Element(el) => {
            let name = el.name.clone();
            let mut index = 1u32;
            let mut sib = doc.prev_sibling(node);
            while let Some(s) = sib {
                if doc.tag_name(s).map(|t| t.eq_ignore_ascii_case(&name)).unwrap_or(false) {
                    index += 1;
                }
                sib = doc.prev_sibling(s);
            }
            // Uppercase for display fidelity with the paper; the engine's
            // name tests are case-insensitive either way.
            Ok(Step::child_name(&name.to_ascii_uppercase(), Some(index as f64)))
        }
        NodeData::Text(_) => {
            let mut index = 1u32;
            let mut sib = doc.prev_sibling(node);
            while let Some(s) = sib {
                if doc.is_text(s) {
                    index += 1;
                }
                sib = doc.prev_sibling(s);
            }
            Ok(Step::child_text(Some(index as f64)))
        }
        NodeData::Comment(_) => {
            let mut index = 1u32;
            let mut sib = doc.prev_sibling(node);
            while let Some(s) = sib {
                if matches!(doc.node(s).data, NodeData::Comment(_)) {
                    index += 1;
                }
                sib = doc.prev_sibling(s);
            }
            let mut step = Step::new(crate::ast::Axis::Child, NodeTest::Comment);
            step.predicates.push(Expr::Number(index as f64));
            Ok(step)
        }
        NodeData::Document => {
            Err(BuildError { message: "cannot address the document node".into() })
        }
        NodeData::Doctype(_) => Err(BuildError { message: "cannot address a doctype node".into() }),
    }
}

/// Render a precise path in the paper's display form: relative to `BODY`
/// (`BODY[1]/DIV[2]/…`), as in the §2.3 example rule.
pub fn display_body_relative(path: &LocationPath) -> String {
    let full = path.to_string();
    match full.find("/BODY") {
        Some(idx) => full[idx + 1..].to_string(),
        None => full,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Engine;
    use retroweb_html::parse;

    #[test]
    fn precise_path_selects_exactly_target() {
        let doc = parse(
            "<html><body><div>a</div><div><table>\
             <tr><td>x</td><td>y</td></tr>\
             <tr><td>p</td><td>q</td></tr>\
             </table></div></body></html>",
        );
        let engine = Engine::new(&doc);
        for node in doc.descendants(doc.root()) {
            if matches!(doc.node(node).data, NodeData::Doctype(_)) {
                continue;
            }
            let path = precise_path(&doc, node).unwrap();
            let expr = Expr::Path(path);
            let got = engine.select(&expr, doc.root()).unwrap();
            assert_eq!(got, vec![node], "path {expr} did not round-trip");
        }
    }

    #[test]
    fn path_shape_matches_paper_style() {
        let doc = parse("<html><body><div>a</div><div><b>label</b> 108 min</div></body></html>");
        let divs = doc.elements_by_tag("div");
        let second_div_text = doc.children(divs[1]).find(|&c| doc.is_text(c)).unwrap();
        let path = precise_path(&doc, second_div_text).unwrap();
        assert_eq!(path.to_string(), "/HTML[1]/BODY[1]/DIV[2]/text()[1]");
        assert_eq!(display_body_relative(&path), "BODY[1]/DIV[2]/text()[1]");
    }

    #[test]
    fn sibling_indices_count_same_kind_only() {
        let doc = parse("<body>t1<b>b1</b>t2<b>b2</b>t3</body>");
        let body = doc.body().unwrap();
        let kids: Vec<NodeId> = doc.children(body).collect();
        // kids: text, b, text, b, text
        let p_t3 = precise_path(&doc, kids[4]).unwrap();
        assert!(p_t3.to_string().ends_with("text()[3]"));
        let p_b2 = precise_path(&doc, kids[3]).unwrap();
        assert!(p_b2.to_string().ends_with("B[2]"));
    }

    #[test]
    fn relative_path_from_ancestor() {
        let doc = parse("<body><table><tr><td>x</td></tr></table></body>");
        let table = doc.elements_by_tag("table")[0];
        let td = doc.elements_by_tag("td")[0];
        let rel = precise_path_from(&doc, td, table).unwrap();
        assert_eq!(rel.to_string(), "TR[1]/TD[1]");
        let engine = Engine::new(&doc);
        let got = engine.select(&Expr::Path(rel), table).unwrap();
        assert_eq!(got, vec![td]);
    }

    #[test]
    fn relative_path_errors_for_non_ancestor() {
        let doc = parse("<body><p>a</p><p>b</p></body>");
        let ps = doc.elements_by_tag("p");
        assert!(precise_path_from(&doc, ps[0], ps[1]).is_err());
    }

    #[test]
    fn detached_node_errors() {
        let mut doc = parse("<body><p>a</p></body>");
        let p = doc.elements_by_tag("p")[0];
        doc.detach(p);
        assert!(precise_path(&doc, p).is_err());
    }
}
