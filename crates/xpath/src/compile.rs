//! Compilation of XPath expressions to a flat, immutable IR.
//!
//! The tree-walking [`Engine`](crate::Engine) re-traverses the AST on
//! every call, cloning node tests and literals along the hot path. A
//! mapping rule, however, is compiled **once** per cluster and then
//! applied to thousands of pages, so this module lowers the parsed
//! [`Expr`] into a step program designed for repeated execution:
//!
//! - **flat arenas** — steps, predicates, sub-expressions and argument
//!   lists live in contiguous tables inside [`CompiledXPath`], addressed
//!   by `u32` ids; execution never clones AST nodes;
//! - **interned name tests** — element/attribute names are stored once
//!   (lowercased) and referenced by id;
//! - **resolved functions** — function names are resolved to an
//!   internal `FnOp` at compile time instead of string-matched per
//!   call;
//! - **positional step specialisation** — the `TAG[n]` steps emitted by
//!   the precise-path builder walk the axis only as far as the `n`-th
//!   match instead of materialising and filtering every candidate;
//! - **reusable evaluation state** — an [`Executor`] is bound to one
//!   document and carries a lazily built document-order rank (O(1) node
//!   comparisons instead of per-comparison key vectors) plus a scratch
//!   buffer pool shared across rule applications.
//!
//! Compilation is **total**: any parseable expression compiles, and
//! errors the interpreter raises at evaluation time (unknown functions,
//! arity mismatches, type errors) are raised at execution time here too,
//! so `CompiledXPath` is a drop-in, behaviour-identical replacement. The
//! interpreter remains the executable reference semantics; the
//! differential suites in this module and `tests/proptests.rs` hold the
//! two implementations equal on every expression they generate.

use crate::ast::{Axis, BinaryOp, Expr, LocationPath, NodeTest, Step};
use crate::eval::EvalError;
use crate::functions::{normalize_space, xpath_substring};
use crate::value::{
    cmp_numbers, format_number, order, str_to_number, string_value_cow, NodeRef, Value,
};
use retroweb_html::{Document, NodeData, NodeId};
use std::borrow::Cow;
use std::cell::{OnceCell, RefCell};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

pub(crate) type ExprId = u32;

/// `(start, len)` window into one of the arenas.
pub(crate) type Span = (u32, u32);

/// Node test with the name interned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum CTest {
    /// Index into [`CompiledXPath::names`].
    Name(u32),
    Wildcard,
    Text,
    Comment,
    Node,
}

/// Execution strategy for a step, decided at compile time from the
/// shape of its predicate chain.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum StepPlan {
    /// Materialise all axis candidates, then filter predicate by
    /// predicate (the reference algorithm).
    Generic,
    /// Single bare positional predicate `TAG[n]`: walk the axis only to
    /// the n-th matching node (the precise-path hot case).
    Nth(f64),
    /// `[e1]…[ek][n]` where every `e*` is position-insensitive and
    /// boolean/node-valued: stream candidates through the filters and
    /// stop at the n-th survivor. This makes the paper's Figure 4
    /// contextual shape — `preceding::text()[normalize-space(.) != ""][1]`
    /// — O(distance to the label) instead of O(page).
    LazyPrefix {
        /// Number of leading filter predicates before the positional.
        filters: u32,
        /// The positional predicate's value.
        n: f64,
    },
}

/// One lowered location step.
#[derive(Clone, Copy, Debug)]
pub(crate) struct CStep {
    pub(crate) axis: Axis,
    pub(crate) test: CTest,
    /// Window into [`CompiledXPath::preds`].
    pub(crate) preds: Span,
    pub(crate) plan: StepPlan,
}

/// A lowered predicate.
#[derive(Clone, Copy, Debug)]
pub(crate) enum CPred {
    /// Bare numeric predicate — `[3]` — specialised to a positional
    /// selection (the precise-path hot case).
    Position(f64),
    /// Anything else, evaluated with position()/last() context.
    Expr(ExprId),
}

/// A lowered location path: window into the step table.
#[derive(Clone, Copy, Debug)]
pub(crate) struct CPath {
    pub(crate) absolute: bool,
    pub(crate) steps: Span,
}

/// Core-library function, resolved at compile time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum FnOp {
    Position,
    Last,
    Count,
    NameOf,
    LocalName,
    Sum,
    StringFn,
    Concat,
    Contains,
    StartsWith,
    EndsWith,
    SubstringBefore,
    SubstringAfter,
    Substring,
    StringLength,
    NormalizeSpace,
    Translate,
    BooleanFn,
    Not,
    TrueFn,
    FalseFn,
    NumberFn,
    Floor,
    Ceiling,
    Round,
}

impl FnOp {
    fn resolve(name: &str) -> Option<FnOp> {
        Some(match name {
            "position" => FnOp::Position,
            "last" => FnOp::Last,
            "count" => FnOp::Count,
            "name" => FnOp::NameOf,
            "local-name" => FnOp::LocalName,
            "sum" => FnOp::Sum,
            "string" => FnOp::StringFn,
            "concat" => FnOp::Concat,
            "contains" => FnOp::Contains,
            "starts-with" => FnOp::StartsWith,
            "ends-with" => FnOp::EndsWith,
            "substring-before" => FnOp::SubstringBefore,
            "substring-after" => FnOp::SubstringAfter,
            "substring" => FnOp::Substring,
            "string-length" => FnOp::StringLength,
            "normalize-space" => FnOp::NormalizeSpace,
            "translate" => FnOp::Translate,
            "boolean" => FnOp::BooleanFn,
            "not" => FnOp::Not,
            "true" => FnOp::TrueFn,
            "false" => FnOp::FalseFn,
            "number" => FnOp::NumberFn,
            "floor" => FnOp::Floor,
            "ceiling" => FnOp::Ceiling,
            "round" => FnOp::Round,
            _ => return None,
        })
    }

    /// Accepted argument counts, mirroring the interpreter's checks
    /// (used by the streamability analysis, not for compile-time
    /// rejection — arity errors still surface at execution time).
    fn arity(self) -> (usize, usize) {
        match self {
            FnOp::Position | FnOp::Last | FnOp::TrueFn | FnOp::FalseFn => (0, 0),
            FnOp::Count
            | FnOp::Sum
            | FnOp::BooleanFn
            | FnOp::Not
            | FnOp::Floor
            | FnOp::Ceiling
            | FnOp::Round => (1, 1),
            FnOp::NameOf
            | FnOp::LocalName
            | FnOp::StringFn
            | FnOp::StringLength
            | FnOp::NormalizeSpace
            | FnOp::NumberFn => (0, 1),
            FnOp::Contains => (1, 2),
            FnOp::StartsWith | FnOp::EndsWith | FnOp::SubstringBefore | FnOp::SubstringAfter => {
                (2, 2)
            }
            FnOp::Substring => (2, 3),
            FnOp::Translate => (3, 3),
            FnOp::Concat => (2, usize::MAX),
        }
    }

    fn name(self) -> &'static str {
        match self {
            FnOp::Position => "position",
            FnOp::Last => "last",
            FnOp::Count => "count",
            FnOp::NameOf => "name",
            FnOp::LocalName => "local-name",
            FnOp::Sum => "sum",
            FnOp::StringFn => "string",
            FnOp::Concat => "concat",
            FnOp::Contains => "contains",
            FnOp::StartsWith => "starts-with",
            FnOp::EndsWith => "ends-with",
            FnOp::SubstringBefore => "substring-before",
            FnOp::SubstringAfter => "substring-after",
            FnOp::Substring => "substring",
            FnOp::StringLength => "string-length",
            FnOp::NormalizeSpace => "normalize-space",
            FnOp::Translate => "translate",
            FnOp::BooleanFn => "boolean",
            FnOp::Not => "not",
            FnOp::TrueFn => "true",
            FnOp::FalseFn => "false",
            FnOp::NumberFn => "number",
            FnOp::Floor => "floor",
            FnOp::Ceiling => "ceiling",
            FnOp::Round => "round",
        }
    }
}

/// A lowered expression node.
#[derive(Clone, Debug)]
pub(crate) enum CExpr {
    Num(f64),
    Str(Box<str>),
    Binary(BinaryOp, ExprId, ExprId),
    Negate(ExprId),
    /// Flattened union alternatives: window into `expr_lists`.
    Union(Span),
    Path(u32),
    Filter {
        primary: ExprId,
        preds: Span,
        rest: Option<u32>,
    },
    /// Resolved call; args are a window into `expr_lists`.
    Call(FnOp, Span),
    /// Unknown function — kept so the error surfaces at execution time,
    /// exactly like the interpreter (compilation is total).
    CallUnknown(Box<str>, Span),
}

/// An XPath expression lowered to the flat IR, ready for repeated
/// execution. Immutable, cheap to share (`Send + Sync`), and completely
/// independent of any document.
pub struct CompiledXPath {
    src: String,
    /// Process-unique program id, assigned at compile time. The
    /// executor's predicate memo keys entries by `(uid, expr, node)`, so
    /// cached outcomes can never alias across programs — not even when
    /// one program is dropped and another is allocated at its address.
    pub(crate) uid: u64,
    pub(crate) exprs: Vec<CExpr>,
    pub(crate) expr_lists: Vec<ExprId>,
    pub(crate) paths: Vec<CPath>,
    pub(crate) steps: Vec<CStep>,
    pub(crate) preds: Vec<CPred>,
    /// Parallel to `preds`: whether the predicate is memoizable — a
    /// non-positional expression that is statically position-insensitive,
    /// never numeric and never erroring, so its truthiness for a given
    /// context node is a pure function the executor may cache.
    pub(crate) pred_memo: Vec<bool>,
    pub(crate) names: Vec<Box<str>>,
    pub(crate) root: ExprId,
}

/// Source of [`CompiledXPath::uid`] values.
static NEXT_UID: AtomicU64 = AtomicU64::new(1);

impl fmt::Debug for CompiledXPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledXPath")
            .field("src", &self.src)
            .field("steps", &self.steps.len())
            .field("exprs", &self.exprs.len())
            .finish()
    }
}

impl CompiledXPath {
    /// Lower a parsed expression. Never fails — evaluation-time errors
    /// stay evaluation-time (now execution-time) errors.
    pub fn compile(expr: &Expr) -> CompiledXPath {
        let mut b = Lowerer::default();
        let root = b.lower_expr(expr);
        let pred_memo = b
            .preds
            .iter()
            .map(|p| match p {
                CPred::Position(_) => false,
                CPred::Expr(e) => b.streamable(*e),
            })
            .collect();
        CompiledXPath {
            src: expr.to_string(),
            uid: NEXT_UID.fetch_add(1, Ordering::Relaxed),
            exprs: b.exprs,
            expr_lists: b.expr_lists,
            paths: b.paths,
            steps: b.steps,
            preds: b.preds,
            pred_memo,
            names: b.names,
            root,
        }
    }

    /// Parse (standard grammar) and compile in one call.
    pub fn parse(text: &str) -> Result<CompiledXPath, crate::parser::ParseError> {
        Ok(CompiledXPath::compile(&crate::parser::parse(text)?))
    }

    /// The display form of the compiled expression.
    pub fn source(&self) -> &str {
        &self.src
    }

    /// One-shot evaluation (builds a throwaway [`Executor`]). Prefer
    /// keeping an `Executor` per document when applying several rules.
    pub fn eval(&self, doc: &Document, ctx: NodeId) -> Result<Value, EvalError> {
        Executor::new(doc).eval(self, ctx)
    }

    /// One-shot node-set selection; attribute results are dropped.
    pub fn select(&self, doc: &Document, ctx: NodeId) -> Result<Vec<NodeId>, EvalError> {
        Executor::new(doc).select(self, ctx)
    }
}

impl From<&Expr> for CompiledXPath {
    fn from(expr: &Expr) -> CompiledXPath {
        CompiledXPath::compile(expr)
    }
}

/// AST → IR lowering state.
#[derive(Default)]
struct Lowerer {
    exprs: Vec<CExpr>,
    expr_lists: Vec<ExprId>,
    paths: Vec<CPath>,
    steps: Vec<CStep>,
    preds: Vec<CPred>,
    names: Vec<Box<str>>,
    name_ids: HashMap<String, u32>,
}

impl Lowerer {
    fn push_expr(&mut self, e: CExpr) -> ExprId {
        self.exprs.push(e);
        (self.exprs.len() - 1) as ExprId
    }

    fn intern(&mut self, name: &str) -> u32 {
        let key = name.to_ascii_lowercase();
        if let Some(&id) = self.name_ids.get(&key) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(key.clone().into_boxed_str());
        self.name_ids.insert(key, id);
        id
    }

    fn lower_expr(&mut self, e: &Expr) -> ExprId {
        match e {
            Expr::Number(n) => self.push_expr(CExpr::Num(*n)),
            Expr::Literal(s) => self.push_expr(CExpr::Str(s.clone().into_boxed_str())),
            Expr::Negate(inner) => {
                let i = self.lower_expr(inner);
                self.push_expr(CExpr::Negate(i))
            }
            Expr::Binary(op, a, b) => {
                let ia = self.lower_expr(a);
                let ib = self.lower_expr(b);
                self.push_expr(CExpr::Binary(*op, ia, ib))
            }
            Expr::Union(..) => {
                // Flatten the whole left-assoc union into one alternative
                // list — executes without intermediate merges.
                let alts: Vec<ExprId> =
                    e.union_alternatives().iter().map(|alt| self.lower_expr(alt)).collect();
                let span = self.push_list(&alts);
                self.push_expr(CExpr::Union(span))
            }
            Expr::Path(p) => {
                let pid = self.lower_path(p);
                self.push_expr(CExpr::Path(pid))
            }
            Expr::Filter { primary, predicates, path } => {
                let ip = self.lower_expr(primary);
                let preds = self.lower_preds(predicates);
                let rest = path.as_ref().map(|p| self.lower_path(p));
                self.push_expr(CExpr::Filter { primary: ip, preds, rest })
            }
            Expr::Call(name, args) => {
                let ids: Vec<ExprId> = args.iter().map(|a| self.lower_expr(a)).collect();
                let span = self.push_list(&ids);
                match FnOp::resolve(name) {
                    Some(op) => self.push_expr(CExpr::Call(op, span)),
                    None => self.push_expr(CExpr::CallUnknown(name.clone().into_boxed_str(), span)),
                }
            }
        }
    }

    fn push_list(&mut self, ids: &[ExprId]) -> Span {
        let start = self.expr_lists.len() as u32;
        self.expr_lists.extend_from_slice(ids);
        (start, ids.len() as u32)
    }

    fn lower_preds(&mut self, predicates: &[Expr]) -> Span {
        // Lower children first (recursion appends to the arenas), then
        // commit this level's predicates as one contiguous window.
        let lowered: Vec<CPred> = predicates
            .iter()
            .map(|p| match p {
                Expr::Number(n) => CPred::Position(*n),
                other => CPred::Expr(self.lower_expr(other)),
            })
            .collect();
        let start = self.preds.len() as u32;
        self.preds.extend_from_slice(&lowered);
        (start, lowered.len() as u32)
    }

    fn lower_path(&mut self, path: &LocationPath) -> u32 {
        let lowered: Vec<CStep> = path.steps.iter().map(|s| self.lower_step(s)).collect();
        let start = self.steps.len() as u32;
        self.steps.extend_from_slice(&lowered);
        self.paths.push(CPath { absolute: path.absolute, steps: (start, lowered.len() as u32) });
        (self.paths.len() - 1) as u32
    }

    fn lower_step(&mut self, step: &Step) -> CStep {
        let test = match &step.test {
            NodeTest::Name(n) => CTest::Name(self.intern(n)),
            NodeTest::Wildcard => CTest::Wildcard,
            NodeTest::Text => CTest::Text,
            NodeTest::Comment => CTest::Comment,
            NodeTest::Node => CTest::Node,
        };
        let preds = self.lower_preds(&step.predicates);
        let plan = self.plan_step(preds);
        CStep { axis: step.axis, test, preds, plan }
    }

    /// Pick the execution strategy from the predicate chain's shape.
    fn plan_step(&self, preds: Span) -> StepPlan {
        let (p0, plen) = preds;
        let window = &self.preds[p0 as usize..(p0 + plen) as usize];
        if let [CPred::Position(n)] = window {
            return StepPlan::Nth(*n);
        }
        // A run of streamable filters followed by a positional predicate.
        let filters = window
            .iter()
            .take_while(|p| matches!(p, CPred::Expr(id) if self.streamable(*id)))
            .count();
        if filters >= 1 {
            if let Some(CPred::Position(n)) = window.get(filters) {
                return StepPlan::LazyPrefix { filters: filters as u32, n: *n };
            }
        }
        StepPlan::Generic
    }

    /// A predicate expression can be streamed when its outcome for one
    /// candidate cannot depend on the other candidates and stopping the
    /// walk early cannot change observable behaviour: it never calls
    /// `position()`/`last()` in the step's own context, it cannot
    /// evaluate to a number (a numeric predicate selects by position),
    /// and it can never raise an evaluation error (the eager interpreter
    /// reports errors from candidates past the n-th survivor; a streamed
    /// filter would not reach them).
    fn streamable(&self, id: ExprId) -> bool {
        !self.ctx_sensitive(id) && self.never_number(id) && self.never_errors(id)
    }

    /// Is the expression statically guaranteed to evaluate without an
    /// `EvalError` in any context? Conservative: `false` when unsure.
    fn never_errors(&self, id: ExprId) -> bool {
        match &self.exprs[id as usize] {
            CExpr::Num(_) | CExpr::Str(_) => true,
            CExpr::Negate(a) => self.never_errors(*a),
            CExpr::Binary(_, a, b) => self.never_errors(*a) && self.never_errors(*b),
            CExpr::Union(span) => {
                self.list(*span).iter().all(|&e| self.always_nodes(e) && self.never_errors(e))
            }
            CExpr::Path(pid) => self.path_never_errors(*pid),
            CExpr::Filter { primary, preds, rest } => {
                self.always_nodes(*primary)
                    && self.never_errors(*primary)
                    && self.preds_never_error(*preds)
                    && rest.is_none_or(|p| self.path_never_errors(p))
            }
            CExpr::Call(op, args) => {
                let arg_ids = self.list(*args);
                if !arg_ids.iter().all(|&e| self.never_errors(e)) {
                    return false;
                }
                let (lo, hi) = op.arity();
                if arg_ids.len() < lo || arg_ids.len() > hi {
                    return false;
                }
                // Node-set-typed parameters must statically be node-sets.
                match op {
                    FnOp::Count | FnOp::Sum => self.always_nodes(arg_ids[0]),
                    FnOp::NameOf | FnOp::LocalName => {
                        arg_ids.first().is_none_or(|&e| self.always_nodes(e))
                    }
                    _ => true,
                }
            }
            CExpr::CallUnknown(..) => false,
        }
    }

    fn list(&self, span: Span) -> &[ExprId] {
        &self.expr_lists[span.0 as usize..(span.0 + span.1) as usize]
    }

    fn always_nodes(&self, id: ExprId) -> bool {
        matches!(self.exprs[id as usize], CExpr::Path(_) | CExpr::Filter { .. } | CExpr::Union(_))
    }

    fn path_never_errors(&self, pid: u32) -> bool {
        let (s0, slen) = self.paths[pid as usize].steps;
        self.steps[s0 as usize..(s0 + slen) as usize]
            .iter()
            .all(|s| self.preds_never_error(s.preds))
    }

    fn preds_never_error(&self, preds: Span) -> bool {
        self.preds[preds.0 as usize..(preds.0 + preds.1) as usize].iter().all(|p| match p {
            CPred::Position(_) => true,
            CPred::Expr(e) => self.never_errors(*e),
        })
    }

    /// Does the expression observe `position()`/`last()` of the context
    /// it is evaluated in? Nested paths and filter predicates establish
    /// fresh contexts, so the walk does not descend into them.
    fn ctx_sensitive(&self, id: ExprId) -> bool {
        match &self.exprs[id as usize] {
            CExpr::Num(_) | CExpr::Str(_) | CExpr::Path(_) => false,
            CExpr::Negate(a) => self.ctx_sensitive(*a),
            CExpr::Binary(_, a, b) => self.ctx_sensitive(*a) || self.ctx_sensitive(*b),
            CExpr::Union(span) | CExpr::Call(_, span) | CExpr::CallUnknown(_, span) => {
                let sensitive_args = self.expr_lists[span.0 as usize..(span.0 + span.1) as usize]
                    .iter()
                    .any(|&e| self.ctx_sensitive(e));
                sensitive_args
                    || matches!(
                        self.exprs[id as usize],
                        CExpr::Call(FnOp::Position | FnOp::Last, _)
                    )
            }
            // Filter predicates run in the filtered set's own context;
            // only the primary sees ours.
            CExpr::Filter { primary, .. } => self.ctx_sensitive(*primary),
        }
    }

    /// Is the expression statically known never to produce a number?
    fn never_number(&self, id: ExprId) -> bool {
        match &self.exprs[id as usize] {
            CExpr::Str(_) | CExpr::Path(_) | CExpr::Union(_) | CExpr::Filter { .. } => true,
            CExpr::Num(_) | CExpr::Negate(_) => false,
            CExpr::Binary(op, ..) => !matches!(
                op,
                BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod
            ),
            CExpr::Call(op, _) => !matches!(
                op,
                FnOp::Position
                    | FnOp::Last
                    | FnOp::Count
                    | FnOp::Sum
                    | FnOp::StringLength
                    | FnOp::NumberFn
                    | FnOp::Floor
                    | FnOp::Ceiling
                    | FnOp::Round
            ),
            // Unknown calls always error; keep them on the generic path
            // so the error order matches the interpreter exactly.
            CExpr::CallUnknown(..) => false,
        }
    }
}

// ---- execution --------------------------------------------------------------

/// Evaluation context for one candidate node.
#[derive(Clone, Copy)]
pub(crate) struct Ctx {
    pub(crate) node: NodeRef,
    pub(crate) pos: usize,
    pub(crate) size: usize,
}

/// Internal value representation: like [`Value`] but strings borrow from
/// the compiled program (literals) or the document (text-node string
/// values), so hot predicates evaluate without allocating.
pub(crate) enum V<'a> {
    Nodes(Vec<NodeRef>),
    Bool(bool),
    Num(f64),
    Str(Cow<'a, str>),
}

impl<'a> V<'a> {
    fn kind(&self) -> &'static str {
        match self {
            V::Nodes(_) => "a node-set",
            V::Bool(_) => "a boolean",
            V::Num(_) => "a number",
            V::Str(_) => "a string",
        }
    }

    fn into_value(self) -> Value {
        match self {
            V::Nodes(ns) => Value::Nodes(ns),
            V::Bool(b) => Value::Bool(b),
            V::Num(n) => Value::Num(n),
            V::Str(s) => Value::Str(s.into_owned()),
        }
    }
}

pub(crate) fn truthy(v: &V<'_>) -> bool {
    match v {
        V::Nodes(ns) => !ns.is_empty(),
        V::Bool(b) => *b,
        V::Num(n) => *n != 0.0 && !n.is_nan(),
        V::Str(s) => !s.is_empty(),
    }
}

/// Detachable executor scratch state: the node-buffer pool plus the
/// predicate-memo table's allocation. An [`Executor`] is lifetime-bound
/// to one document, but its warmed buffers are not — a worker applying
/// a rule set page after page hands the pool from one executor to the
/// next ([`Executor::with_pool`] / [`Executor::into_pool`]) instead of
/// re-growing buffers per page. Memo *entries* never travel: they are
/// keyed by node ids of a specific document, so both hand-off points
/// clear the table (keeping its capacity).
#[derive(Debug, Default)]
pub struct ScratchPool {
    bufs: Vec<Vec<NodeRef>>,
    memo: HashMap<(u64, ExprId, NodeRef), bool>,
}

/// Executor bound to one document: carries the lazily built document
/// order rank, a scratch-buffer pool and a predicate memo, all reused
/// across every rule applied to the page. Cheap to construct; not
/// `Sync` (make one per worker thread — see `extract_cluster_parallel`).
pub struct Executor<'d> {
    doc: &'d Document,
    order: OnceCell<Vec<u32>>,
    bufs: RefCell<Vec<Vec<NodeRef>>>,
    /// Cached truthiness of memoizable predicates (see
    /// [`CompiledXPath::pred_memo`]) per `(program uid, expr, node)`:
    /// overlapping axis walks — the Figure-4 `preceding::text()` label
    /// scans from adjacent candidates — re-test the same nodes, and
    /// rules sharing an interned program share its cached outcomes.
    memo: RefCell<HashMap<(u64, ExprId, NodeRef), bool>>,
}

impl<'d> Executor<'d> {
    pub fn new(doc: &'d Document) -> Executor<'d> {
        Executor::with_pool(doc, ScratchPool::default())
    }

    /// Bind an executor to `doc`, adopting a pool recycled from a
    /// previous page's executor.
    pub fn with_pool(doc: &'d Document, mut pool: ScratchPool) -> Executor<'d> {
        pool.memo.clear();
        Executor {
            doc,
            order: OnceCell::new(),
            bufs: RefCell::new(pool.bufs),
            memo: RefCell::new(pool.memo),
        }
    }

    /// Detach the scratch pool for reuse by the next page's executor.
    pub fn into_pool(self) -> ScratchPool {
        let mut memo = self.memo.into_inner();
        memo.clear();
        ScratchPool { bufs: self.bufs.into_inner(), memo }
    }

    pub fn document(&self) -> &'d Document {
        self.doc
    }

    /// Evaluate with `ctx` as the context node.
    pub fn eval(&self, cx: &CompiledXPath, ctx: NodeId) -> Result<Value, EvalError> {
        let c = Ctx { node: NodeRef::node(ctx), pos: 1, size: 1 };
        Ok(self.eval_expr(cx, cx.root, &c)?.into_value())
    }

    /// Evaluate and require a node-set; attribute refs are kept.
    pub fn select_refs(&self, cx: &CompiledXPath, ctx: NodeId) -> Result<Vec<NodeRef>, EvalError> {
        let c = Ctx { node: NodeRef::node(ctx), pos: 1, size: 1 };
        match self.eval_expr(cx, cx.root, &c)? {
            V::Nodes(ns) => Ok(ns),
            other => Err(EvalError::new(format!(
                "expression yields {} rather than a node-set",
                other.kind()
            ))),
        }
    }

    /// Evaluate and require a node-set of tree nodes (attributes dropped,
    /// as mapping rules locate elements and text nodes only).
    pub fn select(&self, cx: &CompiledXPath, ctx: NodeId) -> Result<Vec<NodeId>, EvalError> {
        Ok(self.select_refs(cx, ctx)?.into_iter().filter(|r| !r.is_attr()).map(|r| r.id).collect())
    }

    /// The string-value of the first selected node, if any.
    pub fn select_first_string(
        &self,
        cx: &CompiledXPath,
        ctx: NodeId,
    ) -> Result<Option<String>, EvalError> {
        let refs = self.select_refs(cx, ctx)?;
        Ok(refs.first().map(|&r| string_value_cow(self.doc, r).into_owned()))
    }

    // ---- document order ---------------------------------------------------

    /// Rank of every attached node in document order; detached arena
    /// slots rank last (they cannot appear in rule evaluation).
    fn rank(&self) -> &[u32] {
        self.order.get_or_init(|| {
            let doc = self.doc;
            let mut rank = vec![u32::MAX; doc.len()];
            rank[doc.root().index()] = 0;
            for (i, n) in doc.descendants(doc.root()).enumerate() {
                rank[n.index()] = (i + 1) as u32;
            }
            rank
        })
    }

    pub(crate) fn sort_dedup(&self, refs: &mut Vec<NodeRef>) {
        if refs.len() <= 1 {
            return;
        }
        let rank = self.rank();
        refs.sort_by_key(|r| (rank[r.id.index()], r.attr.map_or(0, |i| i + 1)));
        refs.dedup();
    }

    // ---- scratch buffers --------------------------------------------------

    pub(crate) fn take_buf(&self) -> Vec<NodeRef> {
        self.bufs.borrow_mut().pop().unwrap_or_default()
    }

    pub(crate) fn give_buf(&self, mut buf: Vec<NodeRef>) {
        buf.clear();
        let mut bufs = self.bufs.borrow_mut();
        if bufs.len() < 16 {
            bufs.push(buf);
        }
    }

    // ---- expression evaluation --------------------------------------------

    pub(crate) fn eval_expr<'a>(
        &'a self,
        cx: &'a CompiledXPath,
        id: ExprId,
        ctx: &Ctx,
    ) -> Result<V<'a>, EvalError> {
        match &cx.exprs[id as usize] {
            CExpr::Num(n) => Ok(V::Num(*n)),
            CExpr::Str(s) => Ok(V::Str(Cow::Borrowed(s))),
            CExpr::Negate(inner) => {
                let v = self.eval_expr(cx, *inner, ctx)?;
                Ok(V::Num(-self.to_number(&v)))
            }
            CExpr::Binary(op, a, b) => self.eval_binary(cx, *op, *a, *b, ctx),
            CExpr::Union((start, len)) => {
                // Mirror the interpreter's left-assoc nesting exactly:
                // each binary union evaluates BOTH operands before the
                // node-set type check, so `1 | bogus-fn(1)` reports the
                // unknown function, not the type error.
                let mut out = Vec::new();
                let mut first_is_nodes = true;
                for (i, slot) in (*start..start + len).enumerate() {
                    let alt = cx.expr_lists[slot as usize];
                    let v = self.eval_expr(cx, alt, ctx)?;
                    let is_nodes = matches!(&v, V::Nodes(_));
                    if i == 0 {
                        // The first operand's type is only checked once the
                        // second has been evaluated (binary semantics).
                        first_is_nodes = is_nodes;
                    } else if (i == 1 && !first_is_nodes) || !is_nodes {
                        return Err(EvalError::new("union operands must be node-sets"));
                    }
                    if let V::Nodes(ns) = v {
                        out.extend(ns);
                    }
                }
                self.sort_dedup(&mut out);
                Ok(V::Nodes(out))
            }
            CExpr::Path(pid) => {
                let path = cx.paths[*pid as usize];
                let start = if path.absolute { NodeRef::node(self.doc.root()) } else { ctx.node };
                Ok(V::Nodes(self.eval_path(cx, path, start)?))
            }
            CExpr::Filter { primary, preds, rest } => {
                let base = self.eval_expr(cx, *primary, ctx)?;
                let mut nodes = match base {
                    V::Nodes(ns) => ns,
                    other => return Err(EvalError::new(format!("cannot filter {}", other.kind()))),
                };
                // Filter predicates see the node-set in document order.
                self.apply_preds(cx, *preds, &mut nodes)?;
                let result = match rest {
                    None => nodes,
                    Some(pid) => {
                        let path = cx.paths[*pid as usize];
                        let mut out = Vec::new();
                        for node in nodes {
                            out.extend(self.eval_path(cx, path, node)?);
                        }
                        self.sort_dedup(&mut out);
                        out
                    }
                };
                Ok(V::Nodes(result))
            }
            CExpr::Call(op, args) => self.call(cx, *op, *args, ctx),
            CExpr::CallUnknown(name, args) => {
                // Evaluate arguments eagerly (their errors surface first),
                // then fail like the interpreter does.
                for i in args.0..args.0 + args.1 {
                    self.eval_expr(cx, cx.expr_lists[i as usize], ctx)?;
                }
                Err(EvalError::new(format!("unknown function '{name}'")))
            }
        }
    }

    fn eval_binary<'a>(
        &'a self,
        cx: &'a CompiledXPath,
        op: BinaryOp,
        a: ExprId,
        b: ExprId,
        ctx: &Ctx,
    ) -> Result<V<'a>, EvalError> {
        match op {
            BinaryOp::Or => {
                if truthy(&self.eval_expr(cx, a, ctx)?) {
                    return Ok(V::Bool(true));
                }
                Ok(V::Bool(truthy(&self.eval_expr(cx, b, ctx)?)))
            }
            BinaryOp::And => {
                if !truthy(&self.eval_expr(cx, a, ctx)?) {
                    return Ok(V::Bool(false));
                }
                Ok(V::Bool(truthy(&self.eval_expr(cx, b, ctx)?)))
            }
            BinaryOp::Eq
            | BinaryOp::Ne
            | BinaryOp::Lt
            | BinaryOp::Le
            | BinaryOp::Gt
            | BinaryOp::Ge => {
                let va = self.eval_expr(cx, a, ctx)?;
                let vb = self.eval_expr(cx, b, ctx)?;
                Ok(V::Bool(self.compare(op, &va, &vb)))
            }
            BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => {
                let na = self.to_number(&self.eval_expr(cx, a, ctx)?);
                let nb = self.to_number(&self.eval_expr(cx, b, ctx)?);
                let r = match op {
                    BinaryOp::Add => na + nb,
                    BinaryOp::Sub => na - nb,
                    BinaryOp::Mul => na * nb,
                    BinaryOp::Div => na / nb,
                    BinaryOp::Mod => na % nb,
                    _ => unreachable!(),
                };
                Ok(V::Num(r))
            }
        }
    }

    /// XPath 1.0 comparison semantics (node-set existential rules) —
    /// mirrors `Engine::compare`, with the right-hand node strings
    /// computed once instead of once per left-hand node.
    fn compare(&self, op: BinaryOp, a: &V<'_>, b: &V<'_>) -> bool {
        use BinaryOp::*;
        match (a, b) {
            (V::Nodes(na), V::Nodes(nb)) => {
                let right: Vec<Cow<'_, str>> =
                    nb.iter().map(|&y| string_value_cow(self.doc, y)).collect();
                na.iter().any(|&x| {
                    let sx = string_value_cow(self.doc, x);
                    right.iter().any(|sy| match op {
                        Eq => sx == *sy,
                        Ne => sx != *sy,
                        _ => cmp_numbers(op, str_to_number(&sx), str_to_number(sy)),
                    })
                })
            }
            (V::Nodes(ns), other) => self.compare_nodeset_scalar(op, ns, other, false),
            (other, V::Nodes(ns)) => self.compare_nodeset_scalar(op, ns, other, true),
            _ => self.compare_scalars(op, a, b),
        }
    }

    fn compare_nodeset_scalar(
        &self,
        op: BinaryOp,
        ns: &[NodeRef],
        scalar: &V<'_>,
        flipped: bool,
    ) -> bool {
        use BinaryOp::*;
        match scalar {
            V::Bool(b) => {
                let nb = !ns.is_empty();
                match op {
                    Eq => nb == *b,
                    Ne => nb != *b,
                    _ => {
                        let (l, r) = order(nb as i32 as f64, *b as i32 as f64, flipped);
                        cmp_numbers(op, l, r)
                    }
                }
            }
            V::Num(n) => ns.iter().any(|&x| {
                let nx = str_to_number(&string_value_cow(self.doc, x));
                match op {
                    Eq => nx == *n,
                    Ne => nx != *n,
                    _ => {
                        let (l, r) = order(nx, *n, flipped);
                        cmp_numbers(op, l, r)
                    }
                }
            }),
            V::Str(s) => ns.iter().any(|&x| {
                let sx = string_value_cow(self.doc, x);
                match op {
                    Eq => sx == *s,
                    Ne => sx != *s,
                    _ => {
                        let (l, r) = order(str_to_number(&sx), str_to_number(s), flipped);
                        cmp_numbers(op, l, r)
                    }
                }
            }),
            V::Nodes(_) => unreachable!(),
        }
    }

    fn compare_scalars(&self, op: BinaryOp, a: &V<'_>, b: &V<'_>) -> bool {
        use BinaryOp::*;
        match op {
            Eq | Ne => {
                let eq = if matches!(a, V::Bool(_)) || matches!(b, V::Bool(_)) {
                    truthy(a) == truthy(b)
                } else if matches!(a, V::Num(_)) || matches!(b, V::Num(_)) {
                    self.to_number(a) == self.to_number(b)
                } else {
                    self.to_string_value(a) == self.to_string_value(b)
                };
                if op == Eq {
                    eq
                } else {
                    !eq
                }
            }
            _ => cmp_numbers(op, self.to_number(a), self.to_number(b)),
        }
    }

    // ---- conversions (mirror value.rs on the borrowed representation) -----

    fn to_string_value<'v>(&'v self, v: &'v V<'_>) -> Cow<'v, str> {
        match v {
            V::Nodes(ns) => match ns.first() {
                Some(&n) => string_value_cow(self.doc, n),
                None => Cow::Borrowed(""),
            },
            V::Bool(true) => Cow::Borrowed("true"),
            V::Bool(false) => Cow::Borrowed("false"),
            V::Num(n) => Cow::Owned(format_number(*n)),
            V::Str(s) => Cow::Borrowed(s.as_ref()),
        }
    }

    fn to_number(&self, v: &V<'_>) -> f64 {
        match v {
            V::Nodes(_) => str_to_number(&self.to_string_value(v)),
            V::Bool(true) => 1.0,
            V::Bool(false) => 0.0,
            V::Num(n) => *n,
            V::Str(s) => str_to_number(s),
        }
    }

    // ---- location paths ---------------------------------------------------

    fn eval_path(
        &self,
        cx: &CompiledXPath,
        path: CPath,
        start: NodeRef,
    ) -> Result<Vec<NodeRef>, EvalError> {
        let mut current = self.take_buf();
        current.push(start);
        let mut scratch = self.take_buf();
        let (s0, slen) = path.steps;
        for si in s0..s0 + slen {
            let step = cx.steps[si as usize];
            let mut next = self.take_buf();
            self.advance_step(cx, step, &current, &mut next, &mut scratch)?;
            self.give_buf(std::mem::replace(&mut current, next));
        }
        self.give_buf(scratch);
        Ok(current)
    }

    /// Advance a path frontier by one location step: apply `step` to
    /// every node of `current`, appending to `next` and restoring
    /// document order. This is the step kernel shared by [`eval_path`]
    /// and the fused cluster executor ([`crate::fuse`]) — rules merged
    /// into a shared-prefix trie run through the byte-identical frontier
    /// transition they would take individually.
    ///
    /// [`eval_path`]: Executor::eval_path
    pub(crate) fn advance_step(
        &self,
        cx: &CompiledXPath,
        step: CStep,
        current: &[NodeRef],
        next: &mut Vec<NodeRef>,
        scratch: &mut Vec<NodeRef>,
    ) -> Result<(), EvalError> {
        let multi_ctx = current.len() > 1;
        for &node in current {
            match step.plan {
                // `TAG[n]`: walk the axis only to the n-th match.
                StepPlan::Nth(n) => self.push_nth(cx, node, step, n, next),
                // `[filter…][n]`: stream candidates, stop at the
                // n-th survivor, then apply any remaining predicates.
                StepPlan::LazyPrefix { filters, n } => {
                    scratch.clear();
                    self.push_nth_filtered(cx, node, step, filters, n, scratch)?;
                    let rest = (step.preds.0 + filters + 1, step.preds.1 - filters - 1);
                    self.apply_preds(cx, rest, scratch)?;
                    next.extend_from_slice(scratch);
                }
                StepPlan::Generic => {
                    scratch.clear();
                    self.for_each_axis(node, step.axis, |r| {
                        if self.test_matches(cx, r, step.axis, step.test) {
                            scratch.push(r);
                        }
                        true
                    });
                    self.apply_preds(cx, step.preds, scratch)?;
                    next.extend_from_slice(scratch);
                }
            }
        }
        if multi_ctx {
            self.sort_dedup(next);
        } else if step.axis.is_reverse() {
            // A single context on a reverse axis yields nearest-first
            // candidates: reversing restores document order without a
            // sort (the interpreter sorts here).
            next.reverse();
        }
        Ok(())
    }

    /// Evaluate predicate `eid` as a boolean at `node`, caching the
    /// outcome in the per-document memo keyed by `(program uid, expr,
    /// node)`. Sound only for predicates flagged in
    /// [`CompiledXPath::pred_memo`]: statically position-insensitive,
    /// never numeric and never erroring, so the truthiness is a pure
    /// function of the context node.
    fn memo_truthy(
        &self,
        cx: &CompiledXPath,
        eid: ExprId,
        node: NodeRef,
    ) -> Result<bool, EvalError> {
        if let Some(&hit) = self.memo.borrow().get(&(cx.uid, eid, node)) {
            return Ok(hit);
        }
        // The borrow above is released before eval_expr: nested path
        // evaluation may re-enter the memo.
        let ctx = Ctx { node, pos: 1, size: 1 };
        let keep = truthy(&self.eval_expr(cx, eid, &ctx)?);
        self.memo.borrow_mut().insert((cx.uid, eid, node), keep);
        Ok(keep)
    }

    /// Push the `n`-th node matching `step` on its axis, if any.
    pub(crate) fn push_nth(
        &self,
        cx: &CompiledXPath,
        node: NodeRef,
        step: CStep,
        n: f64,
        out: &mut Vec<NodeRef>,
    ) {
        if n < 1.0 || n.fract() != 0.0 {
            return;
        }
        let target = n as usize;
        let mut seen = 0usize;
        self.for_each_axis(node, step.axis, |r| {
            if self.test_matches(cx, r, step.axis, step.test) {
                seen += 1;
                if seen == target {
                    out.push(r);
                    return false;
                }
            }
            true
        });
    }

    /// Stream axis candidates through the step's first `filters`
    /// predicates (statically position-insensitive, non-numeric) and push
    /// the `n`-th survivor, stopping the axis walk there. Evaluation
    /// errors from the filters are propagated.
    pub(crate) fn push_nth_filtered(
        &self,
        cx: &CompiledXPath,
        node: NodeRef,
        step: CStep,
        filters: u32,
        n: f64,
        out: &mut Vec<NodeRef>,
    ) -> Result<(), EvalError> {
        if n < 1.0 || n.fract() != 0.0 {
            return Ok(());
        }
        let target = n as usize;
        let mut survivors = 0usize;
        let mut failure: Option<EvalError> = None;
        self.for_each_axis(node, step.axis, |r| {
            if !self.test_matches(cx, r, step.axis, step.test) {
                return true;
            }
            // LazyPrefix filters are streamable by construction —
            // position-insensitive, non-numeric, non-erroring — so every
            // one of them is memoizable.
            for pi in step.preds.0..step.preds.0 + filters {
                let CPred::Expr(eid) = cx.preds[pi as usize] else { unreachable!() };
                match self.memo_truthy(cx, eid, r) {
                    Ok(true) => {}
                    Ok(false) => return true, // filtered out, keep walking
                    Err(e) => {
                        failure = Some(e);
                        return false;
                    }
                }
            }
            survivors += 1;
            if survivors == target {
                out.push(r);
                return false;
            }
            true
        });
        match failure {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Visit the nodes on `axis` from `node` in axis order (the order
    /// `position()` counts). The callback returns `false` to stop early.
    pub(crate) fn for_each_axis(
        &self,
        node: NodeRef,
        axis: Axis,
        mut f: impl FnMut(NodeRef) -> bool,
    ) {
        let doc = self.doc;
        if node.attr.is_some() {
            // Axes from an attribute node.
            match axis {
                Axis::Parent => {
                    f(NodeRef::node(node.id));
                }
                Axis::SelfAxis => {
                    f(node);
                }
                Axis::Ancestor => {
                    if !f(NodeRef::node(node.id)) {
                        return;
                    }
                    for a in doc.ancestors(node.id) {
                        if !f(NodeRef::node(a)) {
                            return;
                        }
                    }
                }
                Axis::AncestorOrSelf => {
                    if !f(node) || !f(NodeRef::node(node.id)) {
                        return;
                    }
                    for a in doc.ancestors(node.id) {
                        if !f(NodeRef::node(a)) {
                            return;
                        }
                    }
                }
                _ => {}
            }
            return;
        }
        let id = node.id;
        macro_rules! walk {
            ($iter:expr) => {
                for n in $iter {
                    if !f(NodeRef::node(n)) {
                        return;
                    }
                }
            };
        }
        match axis {
            Axis::Child => walk!(doc.children(id)),
            Axis::Descendant => walk!(doc.descendants(id)),
            Axis::DescendantOrSelf => {
                if !f(node) {
                    return;
                }
                walk!(doc.descendants(id));
            }
            Axis::Parent => {
                if let Some(p) = doc.parent(id) {
                    f(NodeRef::node(p));
                }
            }
            Axis::Ancestor => walk!(doc.ancestors(id)),
            Axis::AncestorOrSelf => {
                if !f(node) {
                    return;
                }
                walk!(doc.ancestors(id));
            }
            Axis::FollowingSibling => {
                let mut cur = doc.next_sibling(id);
                while let Some(s) = cur {
                    if !f(NodeRef::node(s)) {
                        return;
                    }
                    cur = doc.next_sibling(s);
                }
            }
            Axis::PrecedingSibling => {
                let mut cur = doc.prev_sibling(id);
                while let Some(s) = cur {
                    if !f(NodeRef::node(s)) {
                        return;
                    }
                    cur = doc.prev_sibling(s);
                }
            }
            Axis::Following => walk!(doc.following(id)),
            Axis::Preceding => walk!(doc.preceding(id)),
            Axis::SelfAxis => {
                f(node);
            }
            Axis::Attribute => {
                if let Some(el) = doc.element(id) {
                    for i in 0..el.attrs.len() {
                        if !f(NodeRef::attribute(id, i as u32)) {
                            return;
                        }
                    }
                }
            }
        }
    }

    pub(crate) fn test_matches(
        &self,
        cx: &CompiledXPath,
        r: NodeRef,
        _axis: Axis,
        test: CTest,
    ) -> bool {
        let doc = self.doc;
        if r.is_attr() {
            // Attribute refs reach here from the attribute axis and from
            // self/ancestor-or-self steps starting at an attribute; name
            // tests match against the attribute's name either way.
            return match test {
                CTest::Name(nid) => doc
                    .element(r.id)
                    .and_then(|el| el.attrs.get(r.attr.unwrap() as usize))
                    .map(|a| a.name.eq_ignore_ascii_case(&cx.names[nid as usize]))
                    .unwrap_or(false),
                CTest::Wildcard | CTest::Node => true,
                CTest::Text | CTest::Comment => false,
            };
        }
        match test {
            CTest::Name(nid) => doc
                .tag_name(r.id)
                .map(|t| t.eq_ignore_ascii_case(&cx.names[nid as usize]))
                .unwrap_or(false),
            CTest::Wildcard => doc.is_element(r.id),
            CTest::Text => doc.is_text(r.id),
            CTest::Comment => matches!(doc.node(r.id).data, NodeData::Comment(_)),
            CTest::Node => true,
        }
    }

    /// Apply a predicate window to `list` in place. `list` must be in the
    /// order that defines `position()`.
    pub(crate) fn apply_preds(
        &self,
        cx: &CompiledXPath,
        preds: Span,
        list: &mut Vec<NodeRef>,
    ) -> Result<(), EvalError> {
        let (p0, plen) = preds;
        for pi in p0..p0 + plen {
            match cx.preds[pi as usize] {
                CPred::Position(n) => {
                    let idx = if n >= 1.0 && n.fract() == 0.0 && (n as usize) <= list.len() {
                        Some(n as usize - 1)
                    } else {
                        None
                    };
                    match idx {
                        Some(i) => {
                            let keep = list[i];
                            list.clear();
                            list.push(keep);
                        }
                        None => list.clear(),
                    }
                }
                CPred::Expr(eid) if cx.pred_memo[pi as usize] => {
                    // Position-insensitive predicate: its truthiness per
                    // node is cacheable across every rule of the page.
                    let mut write = 0usize;
                    for i in 0..list.len() {
                        if self.memo_truthy(cx, eid, list[i])? {
                            list[write] = list[i];
                            write += 1;
                        }
                    }
                    list.truncate(write);
                }
                CPred::Expr(eid) => {
                    let size = list.len();
                    let mut write = 0usize;
                    for i in 0..size {
                        let ctx = Ctx { node: list[i], pos: i + 1, size };
                        let v = self.eval_expr(cx, eid, &ctx)?;
                        let keep = match v {
                            // A numeric predicate selects by position.
                            V::Num(n) => (ctx.pos as f64) == n,
                            other => truthy(&other),
                        };
                        if keep {
                            list[write] = list[i];
                            write += 1;
                        }
                    }
                    list.truncate(write);
                }
            }
        }
        Ok(())
    }

    // ---- function library --------------------------------------------------

    fn call<'a>(
        &'a self,
        cx: &'a CompiledXPath,
        op: FnOp,
        args: Span,
        ctx: &Ctx,
    ) -> Result<V<'a>, EvalError> {
        let doc = self.doc;
        let mut vals: Vec<V<'a>> = Vec::with_capacity(args.1 as usize);
        for i in args.0..args.0 + args.1 {
            vals.push(self.eval_expr(cx, cx.expr_lists[i as usize], ctx)?);
        }
        let argc = vals.len();
        let arity = |lo: usize, hi: usize| -> Result<(), EvalError> {
            if argc < lo || argc > hi {
                Err(EvalError::new(format!(
                    "{}() expects {lo}..{hi} arguments, got {argc}",
                    op.name()
                )))
            } else {
                Ok(())
            }
        };
        // The string of argument 0, or the context node's string-value.
        // Owned so it can escape as the call's result (`string()`).
        let str_or_ctx = |vals: &[V<'a>], i: usize| -> Cow<'a, str> {
            match vals.get(i) {
                Some(v) => Cow::Owned(self.to_string_value(v).into_owned()),
                None => string_value_cow(doc, ctx.node),
            }
        };
        match op {
            FnOp::Position => {
                arity(0, 0)?;
                Ok(V::Num(ctx.pos as f64))
            }
            FnOp::Last => {
                arity(0, 0)?;
                Ok(V::Num(ctx.size as f64))
            }
            FnOp::Count => {
                arity(1, 1)?;
                match &vals[0] {
                    V::Nodes(ns) => Ok(V::Num(ns.len() as f64)),
                    _ => Err(EvalError::new("count() requires a node-set")),
                }
            }
            FnOp::NameOf | FnOp::LocalName => {
                arity(0, 1)?;
                let node = match vals.first() {
                    Some(V::Nodes(ns)) => ns.first().copied(),
                    Some(_) => {
                        return Err(EvalError::new(format!("{}() requires a node-set", op.name())))
                    }
                    None => Some(ctx.node),
                };
                Ok(V::Str(Cow::Owned(
                    node.map(|n| crate::value::node_name(doc, n)).unwrap_or_default(),
                )))
            }
            FnOp::Sum => {
                arity(1, 1)?;
                match &vals[0] {
                    V::Nodes(ns) => {
                        let total: f64 =
                            ns.iter().map(|&n| str_to_number(&string_value_cow(doc, n))).sum();
                        Ok(V::Num(total))
                    }
                    _ => Err(EvalError::new("sum() requires a node-set")),
                }
            }
            FnOp::StringFn => {
                arity(0, 1)?;
                Ok(V::Str(str_or_ctx(&vals, 0)))
            }
            FnOp::Concat => {
                if argc < 2 {
                    return Err(EvalError::new("concat() expects at least 2 arguments"));
                }
                let mut out = String::new();
                for v in &vals {
                    out.push_str(&self.to_string_value(v));
                }
                Ok(V::Str(Cow::Owned(out)))
            }
            FnOp::Contains => {
                // Standard: contains(haystack, needle). Lenient (paper
                // Table 2 row b): contains(needle) checks the context node.
                arity(1, 2)?;
                let (hay, needle) = if argc == 2 {
                    (self.to_string_value(&vals[0]), self.to_string_value(&vals[1]))
                } else {
                    (string_value_cow(doc, ctx.node), self.to_string_value(&vals[0]))
                };
                Ok(V::Bool(hay.contains(needle.as_ref())))
            }
            FnOp::StartsWith => {
                arity(2, 2)?;
                let a = self.to_string_value(&vals[0]);
                let b = self.to_string_value(&vals[1]);
                Ok(V::Bool(a.starts_with(b.as_ref())))
            }
            FnOp::EndsWith => {
                arity(2, 2)?;
                let a = self.to_string_value(&vals[0]);
                let b = self.to_string_value(&vals[1]);
                Ok(V::Bool(a.ends_with(b.as_ref())))
            }
            FnOp::SubstringBefore => {
                arity(2, 2)?;
                let a = self.to_string_value(&vals[0]);
                let b = self.to_string_value(&vals[1]);
                Ok(V::Str(Cow::Owned(
                    a.find(b.as_ref()).map(|i| a[..i].to_string()).unwrap_or_default(),
                )))
            }
            FnOp::SubstringAfter => {
                arity(2, 2)?;
                let a = self.to_string_value(&vals[0]);
                let b = self.to_string_value(&vals[1]);
                Ok(V::Str(Cow::Owned(
                    a.find(b.as_ref()).map(|i| a[i + b.len()..].to_string()).unwrap_or_default(),
                )))
            }
            FnOp::Substring => {
                arity(2, 3)?;
                let s = self.to_string_value(&vals[0]);
                let chars: Vec<char> = s.chars().collect();
                let start = self.to_number(&vals[1]);
                let len = vals.get(2).map(|v| self.to_number(v));
                Ok(V::Str(Cow::Owned(xpath_substring(&chars, start, len))))
            }
            FnOp::StringLength => {
                arity(0, 1)?;
                // Borrowed argument string: no copy before counting.
                let s = match vals.first() {
                    Some(v) => self.to_string_value(v),
                    None => string_value_cow(doc, ctx.node),
                };
                Ok(V::Num(s.chars().count() as f64))
            }
            FnOp::NormalizeSpace => {
                arity(0, 1)?;
                // Borrowed argument string: `normalize-space(.)` in a hot
                // filter reads the text node in place, allocating only the
                // normalised output.
                let s = match vals.first() {
                    Some(v) => self.to_string_value(v),
                    None => string_value_cow(doc, ctx.node),
                };
                Ok(V::Str(Cow::Owned(normalize_space(&s))))
            }
            FnOp::Translate => {
                arity(3, 3)?;
                let s = self.to_string_value(&vals[0]);
                let from: Vec<char> = self.to_string_value(&vals[1]).chars().collect();
                let to: Vec<char> = self.to_string_value(&vals[2]).chars().collect();
                let mut out = String::with_capacity(s.len());
                for c in s.chars() {
                    match from.iter().position(|&f| f == c) {
                        Some(i) => {
                            if let Some(&r) = to.get(i) {
                                out.push(r);
                            }
                            // else: removed
                        }
                        None => out.push(c),
                    }
                }
                Ok(V::Str(Cow::Owned(out)))
            }
            FnOp::BooleanFn => {
                arity(1, 1)?;
                Ok(V::Bool(truthy(&vals[0])))
            }
            FnOp::Not => {
                arity(1, 1)?;
                Ok(V::Bool(!truthy(&vals[0])))
            }
            FnOp::TrueFn => {
                arity(0, 0)?;
                Ok(V::Bool(true))
            }
            FnOp::FalseFn => {
                arity(0, 0)?;
                Ok(V::Bool(false))
            }
            FnOp::NumberFn => {
                arity(0, 1)?;
                let n = match vals.first() {
                    Some(v) => self.to_number(v),
                    None => str_to_number(&string_value_cow(doc, ctx.node)),
                };
                Ok(V::Num(n))
            }
            FnOp::Floor => {
                arity(1, 1)?;
                Ok(V::Num(self.to_number(&vals[0]).floor()))
            }
            FnOp::Ceiling => {
                arity(1, 1)?;
                Ok(V::Num(self.to_number(&vals[0]).ceil()))
            }
            FnOp::Round => {
                arity(1, 1)?;
                // XPath round: round half towards +infinity.
                Ok(V::Num((self.to_number(&vals[0]) + 0.5).floor()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Engine;
    use crate::parser::{parse, parse_lenient};
    use retroweb_html::parse as parse_html;

    const MOVIE: &str = "<html><body>\
        <div>header</div>\
        <div><table><tr><td>Title</td><td>Brazil</td></tr>\
        <tr><td>Runtime</td><td>142 min</td></tr>\
        <tr><td>Country</td><td>UK</td></tr></table></div>\
        <ul><li>alpha</li><li>beta</li><li>gamma</li></ul>\
        </body></html>";

    const CONTEXT_PAGE: &str = "<html><body><table><tr><td>\
        <b>Also Known As:</b> The Wing and the Thigh <br>\
        <b>Runtime:</b> 104 min <br>\
        <b>Country:</b> France <br>\
        </td></tr></table></body></html>";

    const ATTRS: &str =
        "<body><a href=\"x\" id=\"l1\">one</a><a id=\"l2\">two</a><p class=\"c\">p</p></body>";

    /// Every differential corpus entry is checked for identical results
    /// (or identical err-ness) between interpreter and compiled IR.
    fn assert_equivalent(doc: &Document, xpath: &str, lenient: bool) {
        let expr = if lenient {
            parse_lenient(xpath).unwrap_or_else(|e| panic!("parse {xpath}: {e}"))
        } else {
            parse(xpath).unwrap_or_else(|e| panic!("parse {xpath}: {e}"))
        };
        let engine = Engine::new(doc);
        let exec = Executor::new(doc);
        let compiled = CompiledXPath::compile(&expr);
        let interpreted = engine.eval(&expr, doc.root());
        let executed = exec.eval(&compiled, doc.root());
        match (interpreted, executed) {
            // NaN == NaN for the purpose of equivalence.
            (Ok(Value::Num(a)), Ok(Value::Num(b))) if a.is_nan() && b.is_nan() => {}
            (Ok(a), Ok(b)) => assert_eq!(a, b, "{xpath}"),
            (Err(a), Err(b)) => assert_eq!(a.message, b.message, "{xpath}"),
            (a, b) => panic!("{xpath}: interpreter {a:?} vs compiled {b:?}"),
        }
        // Node-set selections must agree through select_refs too.
        let sa = engine.select_refs(&expr, doc.root());
        let sb = exec.select_refs(&compiled, doc.root());
        match (sa, sb) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "select {xpath}"),
            (Err(_), Err(_)) => {}
            (a, b) => panic!("select {xpath}: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn differential_corpus_movie() {
        let doc = parse_html(MOVIE);
        for xpath in [
            "/HTML[1]/BODY[1]/DIV[2]/TABLE[1]/TR[2]/TD[2]",
            "/HTML/BODY//TR[2]/TD[2]/text()",
            "//td",
            "//TD",
            "//Td",
            "//TABLE[1]/TR[position()>=1]",
            "//TABLE[1]/TR[position()>1]",
            "//TABLE[1]/TR[last()]",
            "//UL/LI/text()",
            "//TD[contains(., \"min\")]",
            "//TR[3]/preceding-sibling::TR[1]/TD[2]/text()",
            "//TD[1]/ancestor::TABLE",
            "//LI[2]/ancestor::*",
            "//LI[1]/following::LI",
            "//UL/preceding::TD[1]",
            "//LI[3] | //LI[1]",
            "//LI[1] | //LI[2] | //LI[3]",
            "(//TD)[4]",
            "//TD[4]",
            "//TABLE[2]",
            "//TR[9]/TD[1]",
            "//TR[0]",
            "//TR[1.5]",
            "//TR[-1]",
            "count(//TR)",
            "count(//NOPE) = 0",
            "string-length(\"abc\")",
            "normalize-space(\"  a   b \")",
            "concat(\"a\", \"b\", \"c\")",
            "substring(\"12345\", 2, 3)",
            "substring(\"12345\", 1.5, 2.6)",
            "substring-before(\"142 min\", \" min\")",
            "substring-after(\"Runtime: 142\", \": \")",
            "starts-with(\"Runtime:\", \"Run\")",
            "ends-with(\"Runtime:\", \":\")",
            "translate(\"bar\", \"abc\", \"ABC\")",
            "contains(\"108 min\", \"min\")",
            "floor(1.9)",
            "ceiling(1.1)",
            "round(2.5)",
            "round(-2.5)",
            "2 + 3 * 4",
            "10 mod 3",
            "8 div 2",
            "-(3)",
            "number(\"42\")",
            "number(\"x\")",
            "sum(//NOPE)",
            "not(count(//TR) = 3)",
            "count(//TR) > 2 and count(//LI) = 3",
            "count(//TR) > 5 or true()",
            "boolean(//NOPE)",
            "//TD = \"UK\"",
            "//TD != \"UK\"",
            "//TD = //LI",
            "//TD = 142",
            "142 = //TD",
            "//TD < //LI",
            "2 > count(//NOPE)",
            "name(//TABLE)",
            "local-name(//UL/LI[1])",
            "string(//TR[2])",
            "string()",
            "normalize-space()",
            "string-length()",
            "//TD/text()[preceding::text()[normalize-space(.) != \"\"][1][contains(., \"Runtime\")]]",
            "//*[self::TD]",
            "//comment()",
            "//node()",
            "//TR/node()",
            "descendant::TD",
            "descendant-or-self::node()",
            ".",
            "..",
            "./DIV",
            "//TD[position() = last()]",
            "//LI[position() mod 2 = 1]",
            // Error cases: both sides must fail identically.
            "bogus-fn(1)",
            "count()",
            "1 | 2",
            "1 | bogus-fn(1)",
            "//TD | bogus-fn(1)",
            "1 | 2 | 3",
            "count(1)",
            "sum(\"x\")",
            "name(1)",
            "(1)[1]",
            "true() | //TD",
        ] {
            assert_equivalent(&doc, xpath, false);
        }
    }

    #[test]
    fn differential_corpus_contextual() {
        let doc = parse_html(CONTEXT_PAGE);
        for xpath in [
            "//TD/text()[preceding::text()[normalize-space(.) != \"\"][1][contains(normalize-space(.), \"Runtime:\")]]",
            "//B/text()",
            "//TD/text()",
            "//text()[normalize-space(.) != \"\"]",
            "//BR/preceding::text()[1]",
            "//BR/following::text()",
        ] {
            assert_equivalent(&doc, xpath, false);
        }
    }

    #[test]
    fn differential_corpus_attributes() {
        let doc = parse_html(ATTRS);
        for xpath in [
            "//A[@href]",
            "//A[@id=\"l2\"]",
            "//A[1]/@href",
            "//A/@*",
            "//@id",
            "//A/@href/..",
            "//A/@href/parent::A",
            "//A/@href/ancestor::BODY",
            "//A/@href/ancestor-or-self::node()",
            "//A/@href/self::node()",
            "//P[@class=\"c\"]",
            "string(//A[1]/@href)",
            "count(//@id)",
        ] {
            assert_equivalent(&doc, xpath, false);
        }
    }

    #[test]
    fn lenient_one_arg_contains_matches() {
        let doc = parse_html(MOVIE);
        assert_equivalent(&doc, "//TD/text()[contains(\"min\")]", true);
    }

    #[test]
    fn positional_fast_path_agrees_with_filtering() {
        let doc = parse_html(MOVIE);
        // These all take the push_nth fast path; positions out of range,
        // fractional and negative must produce empty sets, not panics.
        for xpath in [
            "/HTML[1]/BODY[1]/DIV[2]",
            "//TR[2]",
            "//TR[2]/TD[2]",
            "//LI[3]",
            "//LI[4]",
            "//TR[2]/preceding-sibling::TR[1]",
            "//TR[1]/following-sibling::TR[2]",
            "//LI[1]/ancestor::*[1]",
            "//LI[1]/ancestor::*[2]",
        ] {
            assert_equivalent(&doc, xpath, false);
        }
    }

    #[test]
    fn executor_reuse_across_expressions() {
        let doc = parse_html(MOVIE);
        let exec = Executor::new(&doc);
        let a = CompiledXPath::parse("//TD/text()").unwrap();
        let b = CompiledXPath::parse("//LI[2]").unwrap();
        // Interleaved repeated use must keep producing stable results.
        for _ in 0..3 {
            assert_eq!(exec.select(&a, doc.root()).unwrap().len(), 6);
            assert_eq!(exec.select(&b, doc.root()).unwrap().len(), 1);
        }
    }

    #[test]
    fn compiled_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompiledXPath>();
    }

    #[test]
    fn source_round_trips_display() {
        let expr = parse("//TD[contains(., \"min\")]").unwrap();
        let compiled = CompiledXPath::compile(&expr);
        assert_eq!(compiled.source(), expr.to_string());
    }

    #[test]
    fn select_first_string_matches_engine() {
        let doc = parse_html(MOVIE);
        let expr = parse("//TR[2]/TD[2]/text()").unwrap();
        let engine = Engine::new(&doc);
        let exec = Executor::new(&doc);
        let compiled = CompiledXPath::compile(&expr);
        assert_eq!(
            engine.select_first_string(&expr, doc.root()).unwrap(),
            exec.select_first_string(&compiled, doc.root()).unwrap()
        );
    }
}
