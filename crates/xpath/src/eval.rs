//! The XPath evaluation engine.

use crate::ast::{Axis, BinaryOp, Expr, LocationPath, NodeTest, Step};
use crate::value::{
    cmp_numbers, order, string_value, string_value_cow, to_boolean, to_number, to_string_value,
    NodeRef, Value,
};
use retroweb_html::{Document, NodeData, NodeId};
use std::borrow::Cow;
use std::fmt;

/// Evaluation failure (unknown function, arity error, type error).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvalError {
    pub message: String,
}

impl EvalError {
    pub(crate) fn new(msg: impl Into<String>) -> EvalError {
        EvalError { message: msg.into() }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XPath evaluation error: {}", self.message)
    }
}

impl std::error::Error for EvalError {}

/// Evaluation context: the context node plus position()/last() values.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Ctx {
    pub node: NodeRef,
    pub pos: usize,
    pub size: usize,
}

/// An XPath engine bound to one document.
///
/// Element and attribute name tests match ASCII case-insensitively (HTML
/// behaviour), so the paper's uppercase paths (`BODY[1]/DIV[2]`) select
/// our lowercase DOM.
pub struct Engine<'d> {
    doc: &'d Document,
}

impl<'d> Engine<'d> {
    pub fn new(doc: &'d Document) -> Engine<'d> {
        Engine { doc }
    }

    pub fn document(&self) -> &'d Document {
        self.doc
    }

    /// Evaluate an expression with `ctx` as the context node.
    pub fn eval(&self, expr: &Expr, ctx: NodeId) -> Result<Value, EvalError> {
        self.eval_ctx(expr, &Ctx { node: NodeRef::node(ctx), pos: 1, size: 1 })
    }

    /// Evaluate and require a node-set; attribute refs are kept.
    pub fn select_refs(&self, expr: &Expr, ctx: NodeId) -> Result<Vec<NodeRef>, EvalError> {
        match self.eval(expr, ctx)? {
            Value::Nodes(ns) => Ok(ns),
            other => Err(EvalError::new(format!(
                "expression yields {} rather than a node-set",
                kind_name(&other)
            ))),
        }
    }

    /// Evaluate and require a node-set of tree nodes (attribute results are
    /// dropped — mapping rules locate elements and text nodes only).
    pub fn select(&self, expr: &Expr, ctx: NodeId) -> Result<Vec<NodeId>, EvalError> {
        Ok(self
            .select_refs(expr, ctx)?
            .into_iter()
            .filter(|r| !r.is_attr())
            .map(|r| r.id)
            .collect())
    }

    /// Parse (standard grammar) and select in one call.
    pub fn select_str(&self, xpath: &str, ctx: NodeId) -> Result<Vec<NodeId>, EvalError> {
        let expr = crate::parser::parse(xpath)
            .map_err(|e| EvalError::new(format!("parse failed: {e}")))?;
        self.select(&expr, ctx)
    }

    /// The string-value of the first node selected by `expr`, if any.
    pub fn select_first_string(
        &self,
        expr: &Expr,
        ctx: NodeId,
    ) -> Result<Option<String>, EvalError> {
        let refs = self.select_refs(expr, ctx)?;
        Ok(refs.first().map(|&r| string_value(self.doc, r)))
    }

    pub(crate) fn eval_ctx(&self, expr: &Expr, ctx: &Ctx) -> Result<Value, EvalError> {
        match expr {
            Expr::Number(n) => Ok(Value::Num(*n)),
            Expr::Literal(s) => Ok(Value::Str(s.clone())),
            Expr::Negate(inner) => {
                let v = self.eval_ctx(inner, ctx)?;
                Ok(Value::Num(-to_number(self.doc, &v)))
            }
            Expr::Binary(op, a, b) => self.eval_binary(*op, a, b, ctx),
            Expr::Union(a, b) => {
                let va = self.eval_ctx(a, ctx)?;
                let vb = self.eval_ctx(b, ctx)?;
                match (va, vb) {
                    (Value::Nodes(mut na), Value::Nodes(nb)) => {
                        na.extend(nb);
                        Ok(Value::Nodes(self.sort_refs(na)))
                    }
                    _ => Err(EvalError::new("union operands must be node-sets")),
                }
            }
            Expr::Path(path) => {
                let nodes = self.eval_path(path, ctx)?;
                Ok(Value::Nodes(nodes))
            }
            Expr::Filter { primary, predicates, path } => {
                let base = self.eval_ctx(primary, ctx)?;
                let nodes = match base {
                    Value::Nodes(ns) => ns,
                    other => {
                        return Err(EvalError::new(format!("cannot filter {}", kind_name(&other))))
                    }
                };
                // Filter predicates see the node-set in document order.
                let mut current = nodes;
                for pred in predicates {
                    current = self.apply_predicate(current, pred)?;
                }
                let result = match path {
                    None => current,
                    Some(rel) => {
                        let mut out = Vec::new();
                        for node in current {
                            let sub = self.eval_path_from(rel, node)?;
                            out.extend(sub);
                        }
                        self.sort_refs(out)
                    }
                };
                Ok(Value::Nodes(result))
            }
            Expr::Call(name, args) => self.call(name, args, ctx),
        }
    }

    fn eval_binary(&self, op: BinaryOp, a: &Expr, b: &Expr, ctx: &Ctx) -> Result<Value, EvalError> {
        match op {
            BinaryOp::Or => {
                let va = self.eval_ctx(a, ctx)?;
                if to_boolean(&va) {
                    return Ok(Value::Bool(true));
                }
                let vb = self.eval_ctx(b, ctx)?;
                Ok(Value::Bool(to_boolean(&vb)))
            }
            BinaryOp::And => {
                let va = self.eval_ctx(a, ctx)?;
                if !to_boolean(&va) {
                    return Ok(Value::Bool(false));
                }
                let vb = self.eval_ctx(b, ctx)?;
                Ok(Value::Bool(to_boolean(&vb)))
            }
            BinaryOp::Eq
            | BinaryOp::Ne
            | BinaryOp::Lt
            | BinaryOp::Le
            | BinaryOp::Gt
            | BinaryOp::Ge => {
                let va = self.eval_ctx(a, ctx)?;
                let vb = self.eval_ctx(b, ctx)?;
                Ok(Value::Bool(self.compare(op, &va, &vb)))
            }
            BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => {
                let na = to_number(self.doc, &self.eval_ctx(a, ctx)?);
                let nb = to_number(self.doc, &self.eval_ctx(b, ctx)?);
                let r = match op {
                    BinaryOp::Add => na + nb,
                    BinaryOp::Sub => na - nb,
                    BinaryOp::Mul => na * nb,
                    BinaryOp::Div => na / nb,
                    BinaryOp::Mod => na % nb,
                    _ => unreachable!(),
                };
                Ok(Value::Num(r))
            }
        }
    }

    /// XPath 1.0 comparison semantics (node-set existential rules).
    fn compare(&self, op: BinaryOp, a: &Value, b: &Value) -> bool {
        use BinaryOp::*;
        match (a, b) {
            (Value::Nodes(na), Value::Nodes(nb)) => {
                // ∃ (x, y) with string/number comparison holding. The
                // right-hand strings are computed once, not once per x,
                // and text-node string-values borrow from the document.
                let right: Vec<Cow<'_, str>> =
                    nb.iter().map(|&y| string_value_cow(self.doc, y)).collect();
                na.iter().any(|&x| {
                    let sx = string_value_cow(self.doc, x);
                    right.iter().any(|sy| match op {
                        Eq => sx == *sy,
                        Ne => sx != *sy,
                        _ => cmp_numbers(
                            op,
                            crate::value::str_to_number(&sx),
                            crate::value::str_to_number(sy),
                        ),
                    })
                })
            }
            (Value::Nodes(ns), other) => self.compare_nodeset_scalar(op, ns, other, false),
            (other, Value::Nodes(ns)) => self.compare_nodeset_scalar(op, ns, other, true),
            _ => self.compare_scalars(op, a, b),
        }
    }

    fn compare_nodeset_scalar(
        &self,
        op: BinaryOp,
        ns: &[NodeRef],
        scalar: &Value,
        flipped: bool,
    ) -> bool {
        use BinaryOp::*;
        match scalar {
            Value::Bool(b) => {
                let nb = !ns.is_empty();
                match op {
                    Eq => nb == *b,
                    Ne => nb != *b,
                    _ => {
                        let (l, r) = order(nb as i32 as f64, *b as i32 as f64, flipped);
                        cmp_numbers(op, l, r)
                    }
                }
            }
            Value::Num(n) => ns.iter().any(|&x| {
                let nx = crate::value::str_to_number(&string_value_cow(self.doc, x));
                match op {
                    Eq => nx == *n,
                    Ne => nx != *n,
                    _ => {
                        let (l, r) = order(nx, *n, flipped);
                        cmp_numbers(op, l, r)
                    }
                }
            }),
            Value::Str(s) => ns.iter().any(|&x| {
                let sx = string_value_cow(self.doc, x);
                match op {
                    Eq => sx == *s,
                    Ne => sx != *s,
                    _ => {
                        let nx = crate::value::str_to_number(&sx);
                        let n = crate::value::str_to_number(s);
                        let (l, r) = order(nx, n, flipped);
                        cmp_numbers(op, l, r)
                    }
                }
            }),
            Value::Nodes(_) => unreachable!(),
        }
    }

    fn compare_scalars(&self, op: BinaryOp, a: &Value, b: &Value) -> bool {
        use BinaryOp::*;
        match op {
            Eq | Ne => {
                let eq = if matches!(a, Value::Bool(_)) || matches!(b, Value::Bool(_)) {
                    to_boolean(a) == to_boolean(b)
                } else if matches!(a, Value::Num(_)) || matches!(b, Value::Num(_)) {
                    to_number(self.doc, a) == to_number(self.doc, b)
                } else {
                    to_string_value(self.doc, a) == to_string_value(self.doc, b)
                };
                if op == Eq {
                    eq
                } else {
                    !eq
                }
            }
            _ => cmp_numbers(op, to_number(self.doc, a), to_number(self.doc, b)),
        }
    }

    // ---- location paths ----------------------------------------------------

    fn eval_path(&self, path: &LocationPath, ctx: &Ctx) -> Result<Vec<NodeRef>, EvalError> {
        let start = if path.absolute { NodeRef::node(self.doc.root()) } else { ctx.node };
        self.eval_path_from(path, start)
    }

    fn eval_path_from(
        &self,
        path: &LocationPath,
        start: NodeRef,
    ) -> Result<Vec<NodeRef>, EvalError> {
        let mut current = vec![start];
        for step in &path.steps {
            let mut next = Vec::new();
            for &node in &current {
                let candidates = self.axis_candidates(node, step);
                let filtered = self.apply_step_predicates(candidates, step)?;
                next.extend(filtered);
            }
            current = self.sort_refs(next);
        }
        Ok(current)
    }

    /// Nodes on `step.axis` from `node`, in axis order, filtered by the
    /// node test.
    fn axis_candidates(&self, node: NodeRef, step: &Step) -> Vec<NodeRef> {
        let doc = self.doc;
        let mut out: Vec<NodeRef> = Vec::new();
        if let Some(_attr) = node.attr {
            // Axes from an attribute node.
            match step.axis {
                Axis::Parent => out.push(NodeRef::node(node.id)),
                Axis::SelfAxis => out.push(node),
                Axis::Ancestor => {
                    out.push(NodeRef::node(node.id));
                    out.extend(doc.ancestors(node.id).map(NodeRef::node));
                }
                Axis::AncestorOrSelf => {
                    out.push(node);
                    out.push(NodeRef::node(node.id));
                    out.extend(doc.ancestors(node.id).map(NodeRef::node));
                }
                _ => {}
            }
            out.retain(|&r| self.test_matches(r, step));
            return out;
        }
        let id = node.id;
        match step.axis {
            Axis::Child => out.extend(doc.children(id).map(NodeRef::node)),
            Axis::Descendant => out.extend(doc.descendants(id).map(NodeRef::node)),
            Axis::DescendantOrSelf => {
                out.push(node);
                out.extend(doc.descendants(id).map(NodeRef::node));
            }
            Axis::Parent => out.extend(doc.parent(id).map(NodeRef::node)),
            Axis::Ancestor => out.extend(doc.ancestors(id).map(NodeRef::node)),
            Axis::AncestorOrSelf => {
                out.push(node);
                out.extend(doc.ancestors(id).map(NodeRef::node));
            }
            Axis::FollowingSibling => {
                let mut cur = doc.next_sibling(id);
                while let Some(s) = cur {
                    out.push(NodeRef::node(s));
                    cur = doc.next_sibling(s);
                }
            }
            Axis::PrecedingSibling => {
                let mut cur = doc.prev_sibling(id);
                while let Some(s) = cur {
                    out.push(NodeRef::node(s));
                    cur = doc.prev_sibling(s);
                }
            }
            Axis::Following => out.extend(doc.following(id).map(NodeRef::node)),
            Axis::Preceding => out.extend(doc.preceding(id).map(NodeRef::node)),
            Axis::SelfAxis => out.push(node),
            Axis::Attribute => {
                if let Some(el) = doc.element(id) {
                    for i in 0..el.attrs.len() {
                        out.push(NodeRef::attribute(id, i as u32));
                    }
                }
            }
        }
        out.retain(|&r| self.test_matches(r, step));
        out
    }

    fn test_matches(&self, r: NodeRef, step: &Step) -> bool {
        let doc = self.doc;
        if r.is_attr() {
            // Only the attribute axis yields attribute nodes; the principal
            // node type there is "attribute".
            return match &step.test {
                NodeTest::Name(n) => crate::value::node_name(doc, r).eq_ignore_ascii_case(n),
                NodeTest::Wildcard | NodeTest::Node => true,
                NodeTest::Text | NodeTest::Comment => false,
            };
        }
        match &step.test {
            NodeTest::Name(n) => {
                doc.tag_name(r.id).map(|t| t.eq_ignore_ascii_case(n)).unwrap_or(false)
            }
            NodeTest::Wildcard => doc.is_element(r.id),
            NodeTest::Text => doc.is_text(r.id),
            NodeTest::Comment => matches!(doc.node(r.id).data, NodeData::Comment(_)),
            NodeTest::Node => true,
        }
    }

    /// Apply a step's predicates to candidates kept in axis order.
    fn apply_step_predicates(
        &self,
        mut candidates: Vec<NodeRef>,
        step: &Step,
    ) -> Result<Vec<NodeRef>, EvalError> {
        for pred in &step.predicates {
            candidates = self.apply_predicate(candidates, pred)?;
        }
        Ok(candidates)
    }

    /// Filter `nodes` (already in the order that defines `position()`).
    fn apply_predicate(&self, nodes: Vec<NodeRef>, pred: &Expr) -> Result<Vec<NodeRef>, EvalError> {
        // A bare numeric predicate selects by position; no need to set up
        // an evaluation context per node.
        if let Expr::Number(n) = pred {
            let keep = (*n >= 1.0 && n.fract() == 0.0 && (*n as usize) <= nodes.len())
                .then(|| nodes[*n as usize - 1]);
            return Ok(keep.into_iter().collect());
        }
        let size = nodes.len();
        let mut kept = Vec::with_capacity(size);
        for (i, node) in nodes.into_iter().enumerate() {
            let ctx = Ctx { node, pos: i + 1, size };
            let v = self.eval_ctx(pred, &ctx)?;
            let keep = match v {
                // A numeric predicate selects by position.
                Value::Num(n) => (ctx.pos as f64) == n,
                other => to_boolean(&other),
            };
            if keep {
                kept.push(node);
            }
        }
        Ok(kept)
    }

    /// Sort into document order and dedup.
    fn sort_refs(&self, mut refs: Vec<NodeRef>) -> Vec<NodeRef> {
        if refs.len() <= 1 {
            return refs;
        }
        let doc = self.doc;
        let mut keyed: Vec<(Vec<u32>, Option<u32>, NodeRef)> =
            refs.drain(..).map(|r| (doc.doc_order_key(r.id), r.attr, r)).collect();
        keyed.sort();
        keyed.dedup_by(|a, b| a.2 == b.2);
        keyed.into_iter().map(|(_, _, r)| r).collect()
    }
}

fn kind_name(v: &Value) -> &'static str {
    match v {
        Value::Nodes(_) => "a node-set",
        Value::Bool(_) => "a boolean",
        Value::Num(_) => "a number",
        Value::Str(_) => "a string",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, parse_lenient};
    use retroweb_html::parse as parse_html;

    fn texts_of(doc: &Document, ids: &[NodeId]) -> Vec<String> {
        ids.iter().map(|&id| doc.text_content(id).trim().to_string()).collect()
    }

    fn select(doc: &Document, xpath: &str) -> Vec<NodeId> {
        let e = parse(xpath).unwrap_or_else(|err| panic!("parse {xpath}: {err}"));
        Engine::new(doc).select(&e, doc.root()).unwrap()
    }

    const MOVIE: &str = "<html><body>\
        <div>header</div>\
        <div><table><tr><td>Title</td><td>Brazil</td></tr>\
        <tr><td>Runtime</td><td>142 min</td></tr>\
        <tr><td>Country</td><td>UK</td></tr></table></div>\
        <ul><li>alpha</li><li>beta</li><li>gamma</li></ul>\
        </body></html>";

    #[test]
    fn child_steps_with_positions() {
        let doc = parse_html(MOVIE);
        let r = select(&doc, "/HTML[1]/BODY[1]/DIV[2]/TABLE[1]/TR[2]/TD[2]");
        assert_eq!(texts_of(&doc, &r), vec!["142 min"]);
    }

    #[test]
    fn case_insensitive_name_tests() {
        let doc = parse_html(MOVIE);
        assert_eq!(select(&doc, "//td").len(), 6);
        assert_eq!(select(&doc, "//TD").len(), 6);
        assert_eq!(select(&doc, "//Td").len(), 6);
    }

    #[test]
    fn descendant_or_self_abbreviation() {
        let doc = parse_html(MOVIE);
        let r = select(&doc, "/HTML/BODY//TR[2]/TD[2]/text()");
        assert_eq!(texts_of(&doc, &r), vec!["142 min"]);
    }

    #[test]
    fn position_ranges() {
        let doc = parse_html(MOVIE);
        let all = select(&doc, "//TABLE[1]/TR[position()>=1]");
        assert_eq!(all.len(), 3);
        let tail = select(&doc, "//TABLE[1]/TR[position()>1]");
        assert_eq!(tail.len(), 2);
        let last = select(&doc, "//TABLE[1]/TR[last()]");
        assert_eq!(texts_of(&doc, &last), vec!["CountryUK"]);
    }

    #[test]
    fn li_items_in_document_order() {
        let doc = parse_html(MOVIE);
        let r = select(&doc, "//UL/LI/text()");
        assert_eq!(texts_of(&doc, &r), vec!["alpha", "beta", "gamma"]);
    }

    #[test]
    fn contains_predicate() {
        let doc = parse_html(MOVIE);
        let r = select(&doc, "//TD[contains(., \"min\")]");
        assert_eq!(texts_of(&doc, &r), vec!["142 min"]);
    }

    #[test]
    fn preceding_sibling_axis_reverse_order() {
        let doc = parse_html(MOVIE);
        // From the Country row, preceding-sibling::TR[1] must be the
        // Runtime row (nearest first), not the Title row.
        let r = select(&doc, "//TR[3]/preceding-sibling::TR[1]/TD[2]/text()");
        assert_eq!(texts_of(&doc, &r), vec!["142 min"]);
    }

    #[test]
    fn ancestor_axis() {
        let doc = parse_html(MOVIE);
        let r = select(&doc, "//TD[1]/ancestor::TABLE");
        assert_eq!(r.len(), 1);
        let r = select(&doc, "//LI[2]/ancestor::*");
        // ul, body, html
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn following_and_preceding_axes() {
        let doc = parse_html(MOVIE);
        let following_li = select(&doc, "//LI[1]/following::LI");
        assert_eq!(texts_of(&doc, &following_li), vec!["beta", "gamma"]);
        let preceding_td = select(&doc, "//UL/preceding::TD[1]");
        // Nearest preceding TD is the UK cell.
        assert_eq!(texts_of(&doc, &preceding_td), vec!["UK"]);
    }

    #[test]
    fn attribute_tests() {
        let doc = parse_html("<body><a href=\"x\" id=\"l1\">one</a><a id=\"l2\">two</a></body>");
        let with_href = select(&doc, "//A[@href]");
        assert_eq!(texts_of(&doc, &with_href), vec!["one"]);
        let by_value = select(&doc, "//A[@id=\"l2\"]");
        assert_eq!(texts_of(&doc, &by_value), vec!["two"]);
        let engine = Engine::new(&doc);
        let e = parse("//A[1]/@href").unwrap();
        let refs = engine.select_refs(&e, doc.root()).unwrap();
        assert_eq!(refs.len(), 1);
        assert!(refs[0].is_attr());
        assert_eq!(string_value(&doc, refs[0]), "x");
    }

    #[test]
    fn union_merges_in_document_order() {
        let doc = parse_html(MOVIE);
        let r = select(&doc, "//LI[3] | //LI[1]");
        assert_eq!(texts_of(&doc, &r), vec!["alpha", "gamma"]);
    }

    #[test]
    fn string_functions() {
        let doc = parse_html(MOVIE);
        let engine = Engine::new(&doc);
        let cases = [
            ("string-length(\"abc\")", Value::Num(3.0)),
            ("normalize-space(\"  a   b \")", Value::Str("a b".into())),
            ("concat(\"a\", \"b\", \"c\")", Value::Str("abc".into())),
            ("substring(\"12345\", 2, 3)", Value::Str("234".into())),
            ("substring(\"12345\", 1.5, 2.6)", Value::Str("234".into())),
            ("substring-before(\"142 min\", \" min\")", Value::Str("142".into())),
            ("substring-after(\"Runtime: 142\", \": \")", Value::Str("142".into())),
            ("starts-with(\"Runtime:\", \"Run\")", Value::Bool(true)),
            ("translate(\"bar\", \"abc\", \"ABC\")", Value::Str("BAr".into())),
            ("contains(\"108 min\", \"min\")", Value::Bool(true)),
        ];
        for (src, expected) in cases {
            let e = parse(src).unwrap();
            let got = engine.eval(&e, doc.root()).unwrap();
            assert_eq!(got, expected, "{src}");
        }
    }

    #[test]
    fn numeric_functions() {
        let doc = parse_html(MOVIE);
        let engine = Engine::new(&doc);
        for (src, expected) in [
            ("count(//TR)", 3.0),
            ("floor(1.9)", 1.0),
            ("ceiling(1.1)", 2.0),
            ("round(2.5)", 3.0),
            ("round(-2.5)", -2.0),
            ("2 + 3 * 4", 14.0),
            ("10 mod 3", 1.0),
            ("number(\"42\")", 42.0),
        ] {
            let e = parse(src).unwrap();
            match engine.eval(&e, doc.root()).unwrap() {
                Value::Num(n) => assert_eq!(n, expected, "{src}"),
                other => panic!("{src}: {other:?}"),
            }
        }
    }

    #[test]
    fn boolean_functions_and_comparisons() {
        let doc = parse_html(MOVIE);
        let engine = Engine::new(&doc);
        for (src, expected) in [
            ("not(count(//TR) = 3)", false),
            ("count(//TR) > 2 and count(//LI) = 3", true),
            ("count(//TR) > 5 or true()", true),
            ("boolean(//NOPE)", false),
            ("//TD = \"UK\"", true),
            ("//TD != \"UK\"", true), // existential: some TD differs
            ("count(//NOPE) = 0", true),
        ] {
            let e = parse(src).unwrap();
            assert_eq!(engine.eval(&e, doc.root()).unwrap(), Value::Bool(expected), "{src}");
        }
    }

    #[test]
    fn name_functions() {
        let doc = parse_html(MOVIE);
        let engine = Engine::new(&doc);
        let e = parse("name(//TABLE)").unwrap();
        assert_eq!(engine.eval(&e, doc.root()).unwrap(), Value::Str("table".into()));
        let e = parse("local-name(//UL/LI[1])").unwrap();
        assert_eq!(engine.eval(&e, doc.root()).unwrap(), Value::Str("li".into()));
    }

    #[test]
    fn relative_evaluation_from_context() {
        let doc = parse_html(MOVIE);
        let engine = Engine::new(&doc);
        let table = doc.elements_by_tag("table")[0];
        let e = parse("TR[2]/TD[1]/text()").unwrap();
        let r = engine.select(&e, table).unwrap();
        assert_eq!(texts_of(&doc, &r), vec!["Runtime"]);
        let e = parse("./TR[1]").unwrap();
        assert_eq!(engine.select(&e, table).unwrap().len(), 1);
        let e = parse("..").unwrap();
        let up = engine.select(&e, table).unwrap();
        assert_eq!(doc.tag_name(up[0]), Some("div"));
    }

    #[test]
    fn lenient_one_arg_contains() {
        let doc = parse_html(MOVIE);
        let engine = Engine::new(&doc);
        let e = parse_lenient("//TD/text()[contains(\"min\")]").unwrap();
        let r = engine.select(&e, doc.root()).unwrap();
        assert_eq!(texts_of(&doc, &r), vec!["142 min"]);
    }

    #[test]
    fn filter_expr_parenthesised_positions() {
        // (//TD)[4] is the 4th TD in the whole document — different from
        // //TD[4] (4th TD within each row).
        let doc = parse_html(MOVIE);
        let r = select(&doc, "(//TD)[4]");
        assert_eq!(texts_of(&doc, &r), vec!["142 min"]);
        assert!(select(&doc, "//TD[4]").is_empty());
    }

    #[test]
    fn void_results_are_empty_not_errors() {
        let doc = parse_html(MOVIE);
        assert!(select(&doc, "//TABLE[2]").is_empty());
        assert!(select(&doc, "//TR[9]/TD[1]").is_empty());
    }

    #[test]
    fn errors_are_reported() {
        let doc = parse_html(MOVIE);
        let engine = Engine::new(&doc);
        let e = parse("bogus-fn(1)").unwrap();
        assert!(engine.eval(&e, doc.root()).is_err());
        let e = parse("count()").unwrap();
        assert!(engine.eval(&e, doc.root()).is_err());
        let e = parse("1 | 2").unwrap();
        assert!(engine.eval(&e, doc.root()).is_err());
    }

    #[test]
    fn paper_context_predicate_selects_runtime() {
        // The refined rule shape used for Figure 4: locate the text node
        // whose nearest preceding non-empty text is the "Runtime:" label.
        let page = "<html><body><table><tr><td>\
            <b>Also Known As:</b> The Wing and the Thigh <br>\
            <b>Runtime:</b> 104 min <br>\
            <b>Country:</b> France <br>\
            </td></tr></table></body></html>";
        let doc = parse_html(page);
        let xpath = "//TD/text()[preceding::text()[normalize-space(.) != \"\"][1][contains(., \"Runtime:\")]]";
        let r = select(&doc, xpath);
        assert_eq!(r.len(), 1);
        assert_eq!(doc.text(r[0]).unwrap().trim(), "104 min");
    }
}
