//! The XPath 1.0 core function library (plus the lenient one-argument
//! `contains` the paper uses in Table 2 row b).

use crate::ast::Expr;
use crate::eval::{Ctx, Engine, EvalError};
use crate::value::{node_name, string_value, to_boolean, to_number, to_string_value, Value};

impl Engine<'_> {
    pub(crate) fn call(&self, name: &str, args: &[Expr], ctx: &Ctx) -> Result<Value, EvalError> {
        let doc = self.document();
        // Evaluate arguments eagerly; all core functions need their values.
        let mut vals = Vec::with_capacity(args.len());
        for a in args {
            vals.push(self.eval_ctx(a, ctx)?);
        }
        let argc = vals.len();
        let arity = |lo: usize, hi: usize| -> Result<(), EvalError> {
            if argc < lo || argc > hi {
                Err(EvalError::new(format!("{name}() expects {lo}..{hi} arguments, got {argc}")))
            } else {
                Ok(())
            }
        };
        // Helper: the string of argument i, or the context node's string.
        let str_or_ctx = |i: usize| -> String {
            vals.get(i)
                .map(|v| to_string_value(doc, v))
                .unwrap_or_else(|| string_value(doc, ctx.node))
        };
        match name {
            // ---- node-set functions -------------------------------------
            "position" => {
                arity(0, 0)?;
                Ok(Value::Num(ctx.pos as f64))
            }
            "last" => {
                arity(0, 0)?;
                Ok(Value::Num(ctx.size as f64))
            }
            "count" => {
                arity(1, 1)?;
                match &vals[0] {
                    Value::Nodes(ns) => Ok(Value::Num(ns.len() as f64)),
                    _ => Err(EvalError::new("count() requires a node-set")),
                }
            }
            "name" | "local-name" => {
                arity(0, 1)?;
                let node = match vals.first() {
                    Some(Value::Nodes(ns)) => ns.first().copied(),
                    Some(_) => return Err(EvalError::new(format!("{name}() requires a node-set"))),
                    None => Some(ctx.node),
                };
                Ok(Value::Str(node.map(|n| node_name(doc, n)).unwrap_or_default()))
            }
            "sum" => {
                arity(1, 1)?;
                match &vals[0] {
                    Value::Nodes(ns) => {
                        let total: f64 = ns
                            .iter()
                            .map(|&n| crate::value::str_to_number(&string_value(doc, n)))
                            .sum();
                        Ok(Value::Num(total))
                    }
                    _ => Err(EvalError::new("sum() requires a node-set")),
                }
            }
            // ---- string functions ---------------------------------------
            "string" => {
                arity(0, 1)?;
                Ok(Value::Str(str_or_ctx(0)))
            }
            "concat" => {
                if argc < 2 {
                    return Err(EvalError::new("concat() expects at least 2 arguments"));
                }
                let mut out = String::new();
                for v in &vals {
                    out.push_str(&to_string_value(doc, v));
                }
                Ok(Value::Str(out))
            }
            "contains" => {
                // Standard: contains(haystack, needle).
                // Lenient (paper Table 2 row b): contains(needle) checks the
                // context node's string-value.
                arity(1, 2)?;
                let (hay, needle) = if argc == 2 {
                    (to_string_value(doc, &vals[0]), to_string_value(doc, &vals[1]))
                } else {
                    (string_value(doc, ctx.node), to_string_value(doc, &vals[0]))
                };
                Ok(Value::Bool(hay.contains(&needle)))
            }
            "starts-with" => {
                arity(2, 2)?;
                let a = to_string_value(doc, &vals[0]);
                let b = to_string_value(doc, &vals[1]);
                Ok(Value::Bool(a.starts_with(&b)))
            }
            "ends-with" => {
                // XPath 2.0 addition; cheap and useful for suffix labels.
                arity(2, 2)?;
                let a = to_string_value(doc, &vals[0]);
                let b = to_string_value(doc, &vals[1]);
                Ok(Value::Bool(a.ends_with(&b)))
            }
            "substring-before" => {
                arity(2, 2)?;
                let a = to_string_value(doc, &vals[0]);
                let b = to_string_value(doc, &vals[1]);
                Ok(Value::Str(a.find(&b).map(|i| a[..i].to_string()).unwrap_or_default()))
            }
            "substring-after" => {
                arity(2, 2)?;
                let a = to_string_value(doc, &vals[0]);
                let b = to_string_value(doc, &vals[1]);
                Ok(Value::Str(a.find(&b).map(|i| a[i + b.len()..].to_string()).unwrap_or_default()))
            }
            "substring" => {
                arity(2, 3)?;
                let s = to_string_value(doc, &vals[0]);
                let chars: Vec<char> = s.chars().collect();
                let start = to_number(doc, &vals[1]);
                let len = vals.get(2).map(|v| to_number(doc, v));
                Ok(Value::Str(xpath_substring(&chars, start, len)))
            }
            "string-length" => {
                arity(0, 1)?;
                Ok(Value::Num(str_or_ctx(0).chars().count() as f64))
            }
            "normalize-space" => {
                arity(0, 1)?;
                let s = str_or_ctx(0);
                Ok(Value::Str(normalize_space(&s)))
            }
            "translate" => {
                arity(3, 3)?;
                let s = to_string_value(doc, &vals[0]);
                let from: Vec<char> = to_string_value(doc, &vals[1]).chars().collect();
                let to: Vec<char> = to_string_value(doc, &vals[2]).chars().collect();
                let mut out = String::with_capacity(s.len());
                for c in s.chars() {
                    match from.iter().position(|&f| f == c) {
                        Some(i) => {
                            if let Some(&r) = to.get(i) {
                                out.push(r);
                            }
                            // else: removed
                        }
                        None => out.push(c),
                    }
                }
                Ok(Value::Str(out))
            }
            // ---- boolean functions --------------------------------------
            "boolean" => {
                arity(1, 1)?;
                Ok(Value::Bool(to_boolean(&vals[0])))
            }
            "not" => {
                arity(1, 1)?;
                Ok(Value::Bool(!to_boolean(&vals[0])))
            }
            "true" => {
                arity(0, 0)?;
                Ok(Value::Bool(true))
            }
            "false" => {
                arity(0, 0)?;
                Ok(Value::Bool(false))
            }
            // ---- number functions ---------------------------------------
            "number" => {
                arity(0, 1)?;
                let n = match vals.first() {
                    Some(v) => to_number(doc, v),
                    None => crate::value::str_to_number(&string_value(doc, ctx.node)),
                };
                Ok(Value::Num(n))
            }
            "floor" => {
                arity(1, 1)?;
                Ok(Value::Num(to_number(doc, &vals[0]).floor()))
            }
            "ceiling" => {
                arity(1, 1)?;
                Ok(Value::Num(to_number(doc, &vals[0]).ceil()))
            }
            "round" => {
                arity(1, 1)?;
                // XPath round: round half towards +infinity.
                let n = to_number(doc, &vals[0]);
                Ok(Value::Num((n + 0.5).floor()))
            }
            other => Err(EvalError::new(format!("unknown function '{other}'"))),
        }
    }
}

/// XPath `substring` semantics: positions are 1-based, start/length are
/// rounded, and the window is intersected with the string. Shared with
/// the compiled executor so both implementations agree by construction.
pub(crate) fn xpath_substring(chars: &[char], start: f64, len: Option<f64>) -> String {
    let round = |n: f64| (n + 0.5).floor();
    let start_r = round(start);
    if start_r.is_nan() {
        return String::new();
    }
    let end_r = match len {
        Some(l) => {
            let l_r = round(l);
            if l_r.is_nan() {
                return String::new();
            }
            start_r + l_r
        }
        None => f64::INFINITY,
    };
    let mut out = String::new();
    for (i, &c) in chars.iter().enumerate() {
        let pos = (i + 1) as f64;
        if pos >= start_r && pos < end_r {
            out.push(c);
        }
    }
    out
}

/// `normalize-space`: strip leading/trailing whitespace and collapse runs
/// of whitespace to single spaces.
pub fn normalize_space(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut in_ws = true; // leading whitespace is dropped
    for c in s.chars() {
        if c.is_whitespace() {
            if !in_ws {
                out.push(' ');
                in_ws = true;
            }
        } else {
            out.push(c);
            in_ws = false;
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substring_edge_cases() {
        let chars: Vec<char> = "12345".chars().collect();
        assert_eq!(xpath_substring(&chars, 0.0, Some(3.0)), "12");
        assert_eq!(xpath_substring(&chars, -1.0, None), "12345");
        assert_eq!(xpath_substring(&chars, f64::NAN, None), "");
        assert_eq!(xpath_substring(&chars, 2.0, Some(f64::NAN)), "");
        assert_eq!(xpath_substring(&chars, 4.0, Some(99.0)), "45");
    }

    #[test]
    fn normalize_space_cases() {
        assert_eq!(normalize_space("  a  b\t c \n"), "a b c");
        assert_eq!(normalize_space(""), "");
        assert_eq!(normalize_space("   "), "");
        assert_eq!(normalize_space("x"), "x");
    }
}
