//! Cluster-level fusion: merge many compiled location paths into one
//! shared-prefix plan executed in a single DOM traversal.
//!
//! The paper's mapping rules are highly redundant within a cluster —
//! every attribute's XPath anchors on the same table or heading region,
//! so executing the rules one by one re-walks the same prefix steps once
//! per rule. [`FusedPlan::build`] merges N [`CompiledXPath`] step
//! programs into a **trie over location steps**: two programs share a
//! trie node exactly when their steps are structurally identical up to
//! that depth, so a common anchor prefix (`//TABLE[2]/TR/...`) is walked
//! once per page and the traversal fans out only where rules genuinely
//! diverge.
//!
//! ## Plan shape
//!
//! The trie is stored as a flat `Vec<TrieNode>`; node 0 is a synthetic
//! root carrying no step. Each other node names one `(program, step)`
//! pair — the *representative* occurrence of that step — plus its child
//! edges and the set of programs whose path **ends** there. Execution
//! ([`FusedPlan::execute`]) does a depth-first walk: the frontier
//! (context node-set) at a trie node is advanced through each child's
//! step via the same `advance_step` kernel that per-rule execution
//! uses, so every program observes the byte-identical frontier sequence
//! it would compute alone.
//!
//! ## Fusibility rules
//!
//! A program is fused iff its root expression is a single **absolute
//! location path** (`CExpr::Path` with `absolute == true`). That covers
//! everything the precise-path builder and the generalisation operators
//! emit — positional paths, contextual predicates, repetitive-step
//! descents — while unions (alternative paths), filter expressions,
//! bare function calls and relative paths take the fallback. Fusibility
//! is decided **per path**: a cluster mixing fusible and unfusible rules
//! still fuses the fusible majority.
//!
//! Steps are compared *structurally* across programs: axes and plans by
//! value, name tests through each program's own name table (interned
//! ids are program-local and never compared directly), numeric literals
//! bit-for-bit, and predicate expressions by deep recursion over the
//! flat IR.
//!
//! ## Fallback contract
//!
//! Programs the planner cannot fuse are executed unchanged via
//! [`Executor::select_refs`] inside the same [`FusedPlan::execute`]
//! call, against the same executor (sharing its document-order rank,
//! scratch buffers and predicate memo). The result vector always has
//! exactly one entry per input program, in input order, each entry being
//! what `select_refs` would have returned for that program — fused or
//! not, erroring or not. Callers cannot observe which route a program
//! took except through [`FusedPlan::stats`].

use crate::compile::{CExpr, CPath, CPred, CStep, CTest, CompiledXPath, Executor, Span};
use crate::eval::EvalError;
use crate::value::NodeRef;
use std::sync::Arc;

/// Aggregate counters describing how well a cluster's rule set fused.
/// Exposed through `/metrics` so a rule set that defeats the planner is
/// visible in production.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FuseStats {
    /// Location paths considered (one per compiled program).
    pub paths_total: usize,
    /// Paths merged into the trie.
    pub paths_fused: usize,
    /// Paths executed per-rule because their shape is unfusible.
    pub paths_fallback: usize,
    /// Steps across all fused paths, before sharing.
    pub steps_total: usize,
    /// Steps that landed on an existing trie node instead of a new one —
    /// axis walks saved per page, the fusion win itself.
    pub steps_shared: usize,
}

/// One node of the step trie. `prog`/`step` locate the representative
/// occurrence of this step (`u32::MAX` for the synthetic root).
#[derive(Debug)]
struct TrieNode {
    prog: u32,
    step: u32,
    children: Vec<u32>,
    /// Programs whose path terminates at this node.
    ends: Vec<u32>,
}

/// A cluster's rules compiled into one shared-prefix traversal plan.
/// Built once per compiled cluster (cached alongside it) and executed
/// once per page. See the [module docs](self) for the plan shape,
/// fusibility rules and fallback contract.
#[derive(Debug)]
pub struct FusedPlan {
    programs: Vec<Arc<CompiledXPath>>,
    nodes: Vec<TrieNode>,
    /// Per program: `Some(trie node)` where its path ends, or `None`
    /// for fallback programs.
    outputs: Vec<Option<u32>>,
    stats: FuseStats,
}

impl FusedPlan {
    /// Merge `programs` into a shared-prefix plan. Never fails:
    /// unfusible programs are registered for per-rule fallback.
    pub fn build(programs: &[Arc<CompiledXPath>]) -> FusedPlan {
        let mut plan = FusedPlan {
            programs: programs.to_vec(),
            nodes: vec![TrieNode {
                prog: u32::MAX,
                step: u32::MAX,
                children: Vec::new(),
                ends: Vec::new(),
            }],
            outputs: Vec::with_capacity(programs.len()),
            stats: FuseStats::default(),
        };
        for (i, p) in programs.iter().enumerate() {
            plan.stats.paths_total += 1;
            let Some(path) = fusible_path(p) else {
                plan.stats.paths_fallback += 1;
                plan.outputs.push(None);
                continue;
            };
            plan.stats.paths_fused += 1;
            let (s0, slen) = path.steps;
            let mut at = 0u32;
            for si in s0..s0 + slen {
                plan.stats.steps_total += 1;
                at = plan.insert_child(at, i as u32, si);
            }
            plan.nodes[at as usize].ends.push(i as u32);
            plan.outputs.push(Some(at));
        }
        plan
    }

    /// Find a child of `parent` structurally equal to step `step` of
    /// program `prog`, or add one. Sharing an existing node is the win
    /// counted by [`FuseStats::steps_shared`].
    fn insert_child(&mut self, parent: u32, prog: u32, step: u32) -> u32 {
        let pa = &self.programs[prog as usize];
        for ci in 0..self.nodes[parent as usize].children.len() {
            let child = self.nodes[parent as usize].children[ci];
            let c = &self.nodes[child as usize];
            let pb = &self.programs[c.prog as usize];
            if step_eq(pa, pa.steps[step as usize], pb, pb.steps[c.step as usize]) {
                self.stats.steps_shared += 1;
                return child;
            }
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(TrieNode { prog, step, children: Vec::new(), ends: Vec::new() });
        self.nodes[parent as usize].children.push(id);
        id
    }

    /// Execute every program against `exec`'s document in one DOM
    /// traversal, returning one `select_refs`-equivalent result per
    /// program, in input order. Fallback programs run per-rule within
    /// the same call (see the fallback contract in the [module
    /// docs](self)).
    pub fn execute(&self, exec: &Executor<'_>) -> Vec<Result<Vec<NodeRef>, EvalError>> {
        let mut results: Vec<Option<Result<Vec<NodeRef>, EvalError>>> =
            (0..self.programs.len()).map(|_| None).collect();
        let root = exec.document().root();
        for (i, out) in self.outputs.iter().enumerate() {
            if out.is_none() {
                results[i] = Some(exec.select_refs(&self.programs[i], root));
            }
        }
        if self.stats.paths_fused > 0 {
            let frontier = [NodeRef::node(root)];
            let mut scratch = exec.take_buf();
            self.descend(exec, 0, &frontier, &mut scratch, &mut results);
            exec.give_buf(scratch);
        }
        results.into_iter().map(|r| r.expect("fused plan covered every program")).collect()
    }

    /// Depth-first trie walk. `frontier` is the context node-set after
    /// the steps on the path from the root to `node` — exactly the
    /// intermediate node-set per-rule execution computes, because each
    /// edge advances through the shared `advance_step` kernel.
    fn descend(
        &self,
        exec: &Executor<'_>,
        node: u32,
        frontier: &[NodeRef],
        scratch: &mut Vec<NodeRef>,
        results: &mut [Option<Result<Vec<NodeRef>, EvalError>>],
    ) {
        let n = &self.nodes[node as usize];
        for &end in &n.ends {
            results[end as usize] = Some(Ok(frontier.to_vec()));
        }
        for &ci in &n.children {
            let c = &self.nodes[ci as usize];
            let cx = &self.programs[c.prog as usize];
            let step = cx.steps[c.step as usize];
            let mut next = exec.take_buf();
            match exec.advance_step(cx, step, frontier, &mut next, scratch) {
                Ok(()) => self.descend(exec, ci, &next, scratch, results),
                // The whole subtree would observe this error: each rule,
                // run alone, would evaluate the same step on the same
                // frontier and fail identically.
                Err(e) => self.mark_err(ci, &e, results),
            }
            exec.give_buf(next);
        }
    }

    /// Record `err` for every program ending in the subtree at `node`.
    fn mark_err(
        &self,
        node: u32,
        err: &EvalError,
        results: &mut [Option<Result<Vec<NodeRef>, EvalError>>],
    ) {
        let n = &self.nodes[node as usize];
        for &end in &n.ends {
            results[end as usize] = Some(Err(err.clone()));
        }
        for &ci in &n.children {
            self.mark_err(ci, err, results);
        }
    }

    /// Fusion counters for this plan.
    pub fn stats(&self) -> FuseStats {
        self.stats
    }

    /// Trie nodes excluding the synthetic root — the number of distinct
    /// steps the fused traversal walks.
    pub fn node_count(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Whether program `i` was merged into the trie (vs fallback).
    pub fn is_fused(&self, i: usize) -> bool {
        self.outputs.get(i).is_some_and(|o| o.is_some())
    }

    /// The programs this plan executes, in input order.
    pub fn programs(&self) -> &[Arc<CompiledXPath>] {
        &self.programs
    }
}

/// The single fusible shape: a root expression that is one absolute
/// location path.
fn fusible_path(p: &CompiledXPath) -> Option<CPath> {
    match &p.exprs[p.root as usize] {
        CExpr::Path(pid) => {
            let path = p.paths[*pid as usize];
            path.absolute.then_some(path)
        }
        _ => None,
    }
}

// ---- structural equality across two programs -------------------------------
//
// Interned ids (names, exprs, steps, preds) are program-local, so every
// comparison resolves through its own program's tables. f64 literals
// compare bit-for-bit: plans must only merge steps that evaluate
// identically, and -0.0/NaN subtleties are not worth relitigating here.

fn step_eq(a: &CompiledXPath, sa: CStep, b: &CompiledXPath, sb: CStep) -> bool {
    // Equal predicate chains imply equal compile-time plans, so `plan`
    // needs no comparison.
    sa.axis == sb.axis && test_eq(a, sa.test, b, sb.test) && preds_eq(a, sa.preds, b, sb.preds)
}

fn test_eq(a: &CompiledXPath, ta: CTest, b: &CompiledXPath, tb: CTest) -> bool {
    match (ta, tb) {
        (CTest::Name(x), CTest::Name(y)) => a.names[x as usize] == b.names[y as usize],
        (CTest::Wildcard, CTest::Wildcard)
        | (CTest::Text, CTest::Text)
        | (CTest::Comment, CTest::Comment)
        | (CTest::Node, CTest::Node) => true,
        _ => false,
    }
}

fn preds_eq(a: &CompiledXPath, pa: Span, b: &CompiledXPath, pb: Span) -> bool {
    if pa.1 != pb.1 {
        return false;
    }
    (0..pa.1).all(|i| pred_eq(a, a.preds[(pa.0 + i) as usize], b, b.preds[(pb.0 + i) as usize]))
}

fn pred_eq(a: &CompiledXPath, pa: CPred, b: &CompiledXPath, pb: CPred) -> bool {
    match (pa, pb) {
        (CPred::Position(m), CPred::Position(n)) => m.to_bits() == n.to_bits(),
        (CPred::Expr(x), CPred::Expr(y)) => expr_eq(a, x, b, y),
        _ => false,
    }
}

fn expr_eq(a: &CompiledXPath, ea: u32, b: &CompiledXPath, eb: u32) -> bool {
    match (&a.exprs[ea as usize], &b.exprs[eb as usize]) {
        (CExpr::Num(m), CExpr::Num(n)) => m.to_bits() == n.to_bits(),
        (CExpr::Str(s), CExpr::Str(t)) => s == t,
        (CExpr::Binary(oa, la, ra), CExpr::Binary(ob, lb, rb)) => {
            oa == ob && expr_eq(a, *la, b, *lb) && expr_eq(a, *ra, b, *rb)
        }
        (CExpr::Negate(x), CExpr::Negate(y)) => expr_eq(a, *x, b, *y),
        (CExpr::Union(x), CExpr::Union(y)) => list_eq(a, *x, b, *y),
        (CExpr::Path(x), CExpr::Path(y)) => path_eq(a, *x, b, *y),
        (
            CExpr::Filter { primary: fa, preds: qa, rest: ra },
            CExpr::Filter { primary: fb, preds: qb, rest: rb },
        ) => {
            expr_eq(a, *fa, b, *fb)
                && preds_eq(a, *qa, b, *qb)
                && match (ra, rb) {
                    (Some(x), Some(y)) => path_eq(a, *x, b, *y),
                    (None, None) => true,
                    _ => false,
                }
        }
        (CExpr::Call(oa, xa), CExpr::Call(ob, xb)) => oa == ob && list_eq(a, *xa, b, *xb),
        (CExpr::CallUnknown(na, xa), CExpr::CallUnknown(nb, xb)) => {
            na == nb && list_eq(a, *xa, b, *xb)
        }
        _ => false,
    }
}

fn list_eq(a: &CompiledXPath, la: Span, b: &CompiledXPath, lb: Span) -> bool {
    if la.1 != lb.1 {
        return false;
    }
    (0..la.1).all(|i| {
        expr_eq(a, a.expr_lists[(la.0 + i) as usize], b, b.expr_lists[(lb.0 + i) as usize])
    })
}

fn path_eq(a: &CompiledXPath, pa: u32, b: &CompiledXPath, pb: u32) -> bool {
    let (xa, xb) = (a.paths[pa as usize], b.paths[pb as usize]);
    if xa.absolute != xb.absolute || xa.steps.1 != xb.steps.1 {
        return false;
    }
    (0..xa.steps.1).all(|i| {
        step_eq(a, a.steps[(xa.steps.0 + i) as usize], b, b.steps[(xb.steps.0 + i) as usize])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use retroweb_html::parse;

    fn compile(srcs: &[&str]) -> Vec<Arc<CompiledXPath>> {
        srcs.iter().map(|s| Arc::new(CompiledXPath::parse(s).unwrap())).collect()
    }

    #[test]
    fn shared_prefix_merges() {
        let plan =
            FusedPlan::build(&compile(&["//TABLE/TR/TD[1]/text()", "//TABLE/TR/TD[2]/text()"]));
        // `//X` lowers to descendant-or-self::node()/child::X — 5 steps
        // per path, the first 3 shared, TD[n]/text() divergent.
        let s = plan.stats();
        assert_eq!(s.paths_total, 2);
        assert_eq!(s.paths_fused, 2);
        assert_eq!(s.paths_fallback, 0);
        assert_eq!(s.steps_total, 10);
        assert_eq!(s.steps_shared, 3);
        assert_eq!(plan.node_count(), 7);
        assert!(plan.is_fused(0) && plan.is_fused(1));
    }

    #[test]
    fn identical_programs_share_terminal() {
        let plan = FusedPlan::build(&compile(&["//TR/TD[2]", "//TR/TD[2]"]));
        let s = plan.stats();
        assert_eq!(s.steps_shared, s.steps_total / 2);
        // One chain of nodes, two programs ending on the last.
        assert_eq!(plan.node_count(), s.steps_total / 2);
    }

    #[test]
    fn divergent_first_step_shares_nothing_but_root() {
        let plan = FusedPlan::build(&compile(&["/HTML/BODY", "/HEAD/TITLE"]));
        let s = plan.stats();
        assert_eq!(s.paths_fused, 2);
        assert_eq!(s.steps_shared, 0);
        assert_eq!(plan.node_count(), 4);
    }

    #[test]
    fn contextual_predicates_share_when_equal() {
        let ctx = "//TD/text()[preceding::text()[normalize-space(.) != \"\"][1]\
                   [contains(normalize-space(.), \"Runtime:\")]]";
        let ctx2 = "//TD/text()[preceding::text()[normalize-space(.) != \"\"][1]\
                   [contains(normalize-space(.), \"Country:\")]]";
        let plan = FusedPlan::build(&compile(&[ctx, ctx, ctx2]));
        let s = plan.stats();
        assert_eq!(s.paths_fused, 3);
        // Each path is 3 steps (descendant-or-self, TD, predicated
        // text()). Program 1 shares all 3 with program 0; program 2
        // diverges only on the final predicated step.
        assert_eq!(s.steps_shared, 3 + 2);
        assert_eq!(plan.node_count(), 3 + 1);
    }

    #[test]
    fn unfusible_shapes_fall_back() {
        let plan = FusedPlan::build(&compile(&[
            "//A | //B",   // union
            "count(//LI)", // bare call
            "TR/TD",       // relative path
            "//TABLE/TR",  // fusible control
        ]));
        let s = plan.stats();
        assert_eq!(s.paths_total, 4);
        assert_eq!(s.paths_fused, 1);
        assert_eq!(s.paths_fallback, 3);
        assert!(!plan.is_fused(0) && !plan.is_fused(1) && !plan.is_fused(2));
        assert!(plan.is_fused(3));
    }

    #[test]
    fn name_tests_compare_through_name_tables() {
        // Same names interned in different orders must still merge.
        let a = Arc::new(CompiledXPath::parse("/BODY/TABLE").unwrap());
        let b = Arc::new(CompiledXPath::parse("/BODY/DIV").unwrap());
        let plan = FusedPlan::build(&[a, b]);
        assert_eq!(plan.stats().steps_shared, 1);
    }

    const PAGE: &str = "<html><body><table>\
        <tr><td>Runtime:</td><td>142 min</td></tr>\
        <tr><td>Country:</td><td>UK</td></tr>\
        <tr><td>Genre:</td><td>Drama</td></tr>\
        </table><div><a href='x'>next</a></div></body></html>";

    #[test]
    fn execute_matches_per_rule_select_refs() {
        let srcs = [
            "//TABLE/TR/TD[1]/text()",
            "//TABLE/TR/TD[2]/text()",
            "//TR[2]/TD[2]/text()",
            "//TD/text()[preceding::text()[normalize-space(.) != \"\"][1]\
             [contains(normalize-space(.), \"Country:\")]]",
            "//A/@href",
            "//A | //TD",    // fallback: union
            "bogus-fn(//A)", // fallback: erroring
            "/HTML/BODY/DIV/A/text()",
        ];
        let programs = compile(&srcs);
        let plan = FusedPlan::build(&programs);
        let doc = parse(PAGE);
        let exec = Executor::new(&doc);
        let fused = plan.execute(&exec);
        assert_eq!(fused.len(), programs.len());
        for (i, p) in programs.iter().enumerate() {
            let solo = exec.select_refs(p, doc.root());
            assert_eq!(fused[i], solo, "program {i}: {}", srcs[i]);
        }
    }

    #[test]
    fn erroring_shared_step_fails_every_dependent_rule() {
        // Both rules share the erroring predicate step; each must get
        // the same error per-rule execution raises.
        let srcs = ["//TD[bogus(.)]/text()", "//TD[bogus(.)]/@align"];
        let programs = compile(&srcs);
        let plan = FusedPlan::build(&programs);
        // descendant-or-self + TD[bogus] shared; text() vs @align diverge.
        assert_eq!(plan.stats().steps_shared, 2);
        let doc = parse(PAGE);
        let exec = Executor::new(&doc);
        for (i, (r, p)) in plan.execute(&exec).iter().zip(&programs).enumerate() {
            let solo = exec.select_refs(p, doc.root());
            assert!(r.is_err(), "program {i} should error");
            assert_eq!(*r, solo, "program {i}");
        }
    }

    #[test]
    fn empty_frontier_yields_empty_results() {
        let programs = compile(&["//NOSUCH/TD/text()", "//NOSUCH/TD/@x"]);
        let plan = FusedPlan::build(&programs);
        let doc = parse(PAGE);
        let exec = Executor::new(&doc);
        for r in plan.execute(&exec) {
            assert_eq!(r, Ok(vec![]));
        }
    }
}
