//! Path generalisation — the automatic half of rule refinement (§3.4).
//!
//! A candidate rule's location is "as specific as possible" (a precise
//! positional path). These operators implement the paper's refinement
//! strategies on the XPath level:
//!
//! - [`broaden_step`]: widen a positional predicate to `position()>=1`
//!   (Table 2 rows c→d) — used when a component is declared multivalued;
//! - [`divergence_step`]: deduce the repetitive step by comparing the
//!   paths of the first and last instance (Table 2 rows e/f → `TR`);
//! - [`with_context_predicate`] / [`context_label`]: replace an unreliable
//!   position with "a constant character string that always visually
//!   appears before (or after) the targeted value" (Figure 4 / Table 2
//!   row b);
//! - [`strip_positions_from`]: drop position information from the step
//!   where a shift occurs.

use crate::ast::{Axis, BinaryOp, Expr, LocationPath, NodeTest, Step};
use crate::functions::normalize_space;
use retroweb_html::{Document, NodeId};

/// Whether the stable context string appears before or after the value in
/// reading order (the paper's Depth First Search order).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ContextDirection {
    Before,
    After,
}

/// Replace the bare numeric predicate of step `idx` with
/// `position()>=1`, keeping any other predicates.
pub fn broaden_step(path: &LocationPath, idx: usize) -> LocationPath {
    let mut out = path.clone();
    if let Some(step) = out.steps.get_mut(idx) {
        let mut preds: Vec<Expr> =
            step.predicates.iter().filter(|p| !matches!(p, Expr::Number(_))).cloned().collect();
        preds.insert(
            0,
            Expr::Binary(
                BinaryOp::Ge,
                Box::new(Expr::Call("position".into(), vec![])),
                Box::new(Expr::Number(1.0)),
            ),
        );
        step.predicates = preds;
    }
    out
}

/// Remove bare numeric predicates from every step at index >= `from`.
pub fn strip_positions_from(path: &LocationPath, from: usize) -> LocationPath {
    let mut out = path.clone();
    for (i, step) in out.steps.iter_mut().enumerate() {
        if i >= from {
            *step = step.without_position();
        }
    }
    out
}

/// If `a` and `b` have the same shape (axes and node tests) and their bare
/// numeric predicates differ at exactly one step, return that step's
/// index. This is the paper's repetitive-tag deduction: comparing the
/// paths of the first and the last instance of a multivalued component.
pub fn divergence_step(a: &LocationPath, b: &LocationPath) -> Option<usize> {
    if a.absolute != b.absolute || a.steps.len() != b.steps.len() {
        return None;
    }
    let mut diff = None;
    for (i, (sa, sb)) in a.steps.iter().zip(&b.steps).enumerate() {
        if sa.axis != sb.axis || sa.test != sb.test {
            return None;
        }
        if sa.position_predicate() != sb.position_predicate() {
            match diff {
                None => diff = Some(i),
                Some(_) => return None, // more than one divergent step
            }
        }
    }
    diff
}

/// The nearest non-whitespace text before (or after) `target` in document
/// order — the label a reader sees next to the value. Returns the
/// normalised text.
pub fn context_label(
    doc: &Document,
    target: NodeId,
    direction: ContextDirection,
) -> Option<String> {
    let label_of = |id: NodeId| -> Option<String> {
        let t = doc.text(id)?;
        let norm = normalize_space(t);
        if norm.is_empty() {
            None
        } else {
            Some(norm)
        }
    };
    match direction {
        ContextDirection::Before => doc.preceding(target).find_map(label_of),
        ContextDirection::After => doc.following(target).find_map(label_of),
    }
}

/// Build the contextual predicate: the nearest preceding (or following)
/// non-empty text node contains `label`.
///
/// Shape (Before): `preceding::text()[normalize-space(.) != ""][1][contains(normalize-space(.), label)]`
pub fn context_predicate(label: &str, direction: ContextDirection) -> Expr {
    let dot = Expr::Path(LocationPath::relative(vec![Step::new(Axis::SelfAxis, NodeTest::Node)]));
    let norm_dot = Expr::Call("normalize-space".into(), vec![dot]);
    let axis = match direction {
        ContextDirection::Before => Axis::Preceding,
        ContextDirection::After => Axis::Following,
    };
    let mut step = Step::new(axis, NodeTest::Text);
    step.predicates = vec![
        Expr::Binary(
            BinaryOp::Ne,
            Box::new(norm_dot.clone()),
            Box::new(Expr::Literal(String::new())),
        ),
        Expr::Number(1.0),
        Expr::Call("contains".into(), vec![norm_dot, Expr::Literal(label.to_string())]),
    ];
    Expr::Path(LocationPath::relative(vec![step]))
}

/// Apply the "adding contextual information" refinement: strip positional
/// predicates from step `strip_from` onward (where the shift occurs) and
/// anchor the final step to `label`.
pub fn with_context_predicate(
    path: &LocationPath,
    strip_from: usize,
    label: &str,
    direction: ContextDirection,
) -> LocationPath {
    let anchor = path.steps.len().saturating_sub(1);
    with_context_predicate_at(path, strip_from, anchor, label, direction)
}

/// Like [`with_context_predicate`], but the label predicate is attached
/// to the step at `anchor` instead of the final step. Multivalued rules
/// anchor on the repetitive step's *container* (e.g. the `UL` before the
/// broadened `LI`), whose nearest preceding text is the section heading.
pub fn with_context_predicate_at(
    path: &LocationPath,
    strip_from: usize,
    anchor: usize,
    label: &str,
    direction: ContextDirection,
) -> LocationPath {
    let mut out = strip_positions_from(path, strip_from);
    if let Some(step) = out.steps.get_mut(anchor) {
        step.predicates.push(context_predicate(label, direction));
    }
    out
}

/// Combine location paths into a single union expression ("adding an
/// alternative path", §3.4).
pub fn alternatives(paths: Vec<LocationPath>) -> Expr {
    assert!(!paths.is_empty());
    Expr::union_of(paths.into_iter().map(Expr::Path).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::precise_path;
    use crate::eval::Engine;
    use crate::parser::parse_path;
    use retroweb_html::parse;

    #[test]
    fn broaden_matches_table2_row_d() {
        // Steps: BODY, descendant-or-self::node(), TABLE, TR — the row
        // step is index 3.
        let path = parse_path("BODY//TABLE[1]/TR[1]").unwrap();
        let broad = broaden_step(&path, 3);
        assert_eq!(broad.to_string(), "BODY//TABLE[1]/TR[position() >= 1]");
    }

    #[test]
    fn broadened_step_selects_all_rows() {
        let doc = parse(
            "<body><table><tr><td>a</td></tr><tr><td>b</td></tr><tr><td>c</td></tr></table></body>",
        );
        let engine = Engine::new(&doc);
        let path = parse_path("//TABLE[1]/TR[1]").unwrap();
        assert_eq!(engine.select(&Expr::Path(path.clone()), doc.root()).unwrap().len(), 1);
        let broad = broaden_step(&path, 2);
        assert_eq!(engine.select(&Expr::Path(broad), doc.root()).unwrap().len(), 3);
    }

    #[test]
    fn divergence_matches_table2_rows_e_f() {
        let first = parse_path("BODY//TABLE[1]/TR[2]/TD[2]/text()").unwrap();
        let last = parse_path("BODY//TABLE[1]/TR[17]/TD[2]/text()").unwrap();
        let idx = divergence_step(&first, &last).unwrap();
        // Steps: BODY, descendant-or-self, TABLE, TR, TD, text() — TR is
        // index 3: "the repetitive element is undoubtedly <TR>".
        assert_eq!(idx, 3);
        assert_eq!(first.steps[idx].test, NodeTest::Name("TR".into()));
    }

    #[test]
    fn divergence_rejects_different_shapes() {
        let a = parse_path("BODY/TR[1]").unwrap();
        let b = parse_path("BODY/TD[2]").unwrap();
        assert_eq!(divergence_step(&a, &b), None);
        let c = parse_path("BODY/TR[1]/TD[1]").unwrap();
        let d = parse_path("BODY/TR[2]/TD[2]").unwrap();
        assert_eq!(divergence_step(&c, &d), None); // two divergent steps
        let e = parse_path("BODY/TR[1]").unwrap();
        assert_eq!(divergence_step(&e, &e), None); // no divergent step
    }

    #[test]
    fn context_label_finds_runtime() {
        let doc = parse("<body><td><b>Runtime:</b> 108 min <br><b>Country:</b> USA </td></body>");
        let td = doc.elements_by_tag("td")[0];
        // "108 min" is the first bare text child of td.
        let value = doc.children(td).find(|&c| doc.is_text(c)).unwrap();
        assert_eq!(context_label(&doc, value, ContextDirection::Before).unwrap(), "Runtime:");
        assert_eq!(context_label(&doc, value, ContextDirection::After).unwrap(), "Country:");
    }

    #[test]
    fn context_refinement_fixes_figure4_shift() {
        // Page 1: Runtime first; the candidate precise path has text()[1].
        let page1 = parse(
            "<html><body><table><tr><td>\
             <b>Runtime:</b> 108 min <br>\
             <b>Country:</b> USA/UK <br>\
             </td></tr></table></body></html>",
        );
        // Page 2: an optional "Also Known As:" shifts every position.
        let page2 = parse(
            "<html><body><table><tr><td>\
             <b>Also Known As:</b> The Wing and the Thigh <br>\
             <b>Runtime:</b> 104 min <br>\
             <b>Country:</b> France <br>\
             </td></tr></table></body></html>",
        );
        let td1 = page1.elements_by_tag("td")[0];
        let value1 = page1.children(td1).find(|&c| page1.is_text(c)).unwrap();
        let candidate = precise_path(&page1, value1).unwrap();

        // The unrefined candidate picks the wrong node on page 2.
        let engine2 = Engine::new(&page2);
        let wrong = engine2.select(&Expr::Path(candidate.clone()), page2.root()).unwrap();
        assert_eq!(page2.text(wrong[0]).unwrap().trim(), "The Wing and the Thigh");

        // Refine: strip the final position, anchor on the label.
        let label = context_label(&page1, value1, ContextDirection::Before).unwrap();
        let strip_from = candidate.steps.len() - 1;
        let refined =
            with_context_predicate(&candidate, strip_from, &label, ContextDirection::Before);

        let engine1 = Engine::new(&page1);
        let got1 = engine1.select(&Expr::Path(refined.clone()), page1.root()).unwrap();
        assert_eq!(page1.text(got1[0]).unwrap().trim(), "108 min");
        let got2 = engine2.select(&Expr::Path(refined), page2.root()).unwrap();
        assert_eq!(got2.len(), 1);
        assert_eq!(page2.text(got2[0]).unwrap().trim(), "104 min");
    }

    #[test]
    fn strip_positions_only_after_index() {
        let path = parse_path("/HTML[1]/BODY[1]/DIV[2]/text()[1]").unwrap();
        let stripped = strip_positions_from(&path, 2);
        assert_eq!(stripped.to_string(), "/HTML[1]/BODY[1]/DIV/text()");
    }

    #[test]
    fn alternatives_union_display() {
        let a = parse_path("/HTML[1]/BODY[1]/P[1]/text()[1]").unwrap();
        let b = parse_path("/HTML[1]/BODY[1]/DIV[1]/text()[1]").unwrap();
        let u = alternatives(vec![a, b]);
        assert_eq!(
            u.to_string(),
            "/HTML[1]/BODY[1]/P[1]/text()[1] | /HTML[1]/BODY[1]/DIV[1]/text()[1]"
        );
        assert_eq!(u.union_alternatives().len(), 2);
    }

    #[test]
    fn context_predicate_round_trips_through_parser() {
        let pred = context_predicate("Runtime:", ContextDirection::Before);
        let mut step = Step::child_text(None);
        step.predicates.push(pred);
        let path =
            LocationPath::absolute(vec![Step::new(Axis::DescendantOrSelf, NodeTest::Node), step]);
        let shown = Expr::Path(path).to_string();
        let reparsed = crate::parser::parse(&shown).unwrap();
        assert_eq!(reparsed.to_string(), shown);
    }
}
