//! XPath tokenizer.
//!
//! Context-free: operator-name disambiguation (`and`, `or`, `div`, `mod`,
//! `*`) is left to the parser, which knows whether it expects an operand
//! or an operator.

use std::fmt;

#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    Number(f64),
    Literal(String),
    /// NCName (possibly an axis name, function name, node-type or name test).
    Name(String),
    Slash,
    DoubleSlash,
    LBracket,
    RBracket,
    LParen,
    RParen,
    Comma,
    At,
    Dot,
    DotDot,
    Pipe,
    Plus,
    Minus,
    Star,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    ColonColon,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Number(n) => write!(f, "{n}"),
            Tok::Literal(s) => write!(f, "\"{s}\""),
            Tok::Name(s) => write!(f, "{s}"),
            Tok::Slash => write!(f, "/"),
            Tok::DoubleSlash => write!(f, "//"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::Comma => write!(f, ","),
            Tok::At => write!(f, "@"),
            Tok::Dot => write!(f, "."),
            Tok::DotDot => write!(f, ".."),
            Tok::Pipe => write!(f, "|"),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Eq => write!(f, "="),
            Tok::Ne => write!(f, "!="),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
            Tok::ColonColon => write!(f, "::"),
        }
    }
}

/// Lexer failure with byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XPath lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_name_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '-' || c == '.'
}

/// Tokenize a full expression.
pub fn lex(input: &str) -> Result<Vec<Tok>, LexError> {
    Ok(lex_spanned(input)?.into_iter().map(|(t, _)| t).collect())
}

/// Tokenize, pairing each token with the byte offset where it starts.
/// `LexError::offset` is a byte offset into `input` as well.
pub fn lex_spanned(input: &str) -> Result<Vec<(Tok, usize)>, LexError> {
    let mut toks = Vec::new();
    let mut chars: Vec<char> = Vec::new();
    // Byte offset of each char, plus a sentinel at the end so every char
    // index (including one-past-the-end) maps to a byte offset.
    let mut bytes: Vec<usize> = Vec::new();
    for (b, c) in input.char_indices() {
        chars.push(c);
        bytes.push(b);
    }
    bytes.push(input.len());
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        let at = bytes[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '/' => {
                if chars.get(i + 1) == Some(&'/') {
                    toks.push((Tok::DoubleSlash, at));
                    i += 2;
                } else {
                    toks.push((Tok::Slash, at));
                    i += 1;
                }
            }
            '[' => {
                toks.push((Tok::LBracket, at));
                i += 1;
            }
            ']' => {
                toks.push((Tok::RBracket, at));
                i += 1;
            }
            '(' => {
                toks.push((Tok::LParen, at));
                i += 1;
            }
            ')' => {
                toks.push((Tok::RParen, at));
                i += 1;
            }
            ',' => {
                toks.push((Tok::Comma, at));
                i += 1;
            }
            '@' => {
                toks.push((Tok::At, at));
                i += 1;
            }
            '|' => {
                toks.push((Tok::Pipe, at));
                i += 1;
            }
            '+' => {
                toks.push((Tok::Plus, at));
                i += 1;
            }
            '-' => {
                toks.push((Tok::Minus, at));
                i += 1;
            }
            '*' => {
                toks.push((Tok::Star, at));
                i += 1;
            }
            '=' => {
                toks.push((Tok::Eq, at));
                i += 1;
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    toks.push((Tok::Ne, at));
                    i += 2;
                } else {
                    return Err(LexError { offset: at, message: "expected '=' after '!'".into() });
                }
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    toks.push((Tok::Le, at));
                    i += 2;
                } else {
                    toks.push((Tok::Lt, at));
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    toks.push((Tok::Ge, at));
                    i += 2;
                } else {
                    toks.push((Tok::Gt, at));
                    i += 1;
                }
            }
            ':' => {
                if chars.get(i + 1) == Some(&':') {
                    toks.push((Tok::ColonColon, at));
                    i += 2;
                } else {
                    return Err(LexError {
                        offset: at,
                        message: "single ':' not supported".into(),
                    });
                }
            }
            '.' => {
                if chars.get(i + 1) == Some(&'.') {
                    toks.push((Tok::DotDot, at));
                    i += 2;
                } else if matches!(chars.get(i + 1), Some(d) if d.is_ascii_digit()) {
                    // .5 style number
                    let start = i;
                    i += 1;
                    while matches!(chars.get(i), Some(d) if d.is_ascii_digit()) {
                        i += 1;
                    }
                    let text: String = chars[start..i].iter().collect();
                    let n = text
                        .parse::<f64>()
                        .map_err(|_| LexError { offset: at, message: "invalid number".into() })?;
                    toks.push((Tok::Number(n), at));
                } else {
                    toks.push((Tok::Dot, at));
                    i += 1;
                }
            }
            '"' | '\'' => {
                let quote = c;
                i += 1;
                let mut s = String::new();
                loop {
                    match chars.get(i) {
                        Some(&ch) if ch == quote => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                        None => {
                            return Err(LexError {
                                offset: at,
                                message: "unterminated string literal".into(),
                            })
                        }
                    }
                }
                toks.push((Tok::Literal(s), at));
            }
            d if d.is_ascii_digit() => {
                let start = i;
                while matches!(chars.get(i), Some(d) if d.is_ascii_digit()) {
                    i += 1;
                }
                if chars.get(i) == Some(&'.') {
                    i += 1;
                    while matches!(chars.get(i), Some(d) if d.is_ascii_digit()) {
                        i += 1;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                let n = text
                    .parse::<f64>()
                    .map_err(|_| LexError { offset: at, message: "invalid number".into() })?;
                toks.push((Tok::Number(n), at));
            }
            c if is_name_start(c) => {
                let start = i;
                while matches!(chars.get(i), Some(&ch) if is_name_char(ch)) {
                    i += 1;
                }
                // NCNames cannot end in '.': give back trailing dots
                // (handles `self.` never occurring, but cheap to be exact).
                let mut end = i;
                while end > start && chars[end - 1] == '.' {
                    end -= 1;
                }
                i = end;
                let name: String = chars[start..end].iter().collect();
                toks.push((Tok::Name(name), at));
            }
            _ => {
                return Err(LexError { offset: at, message: format!("unexpected character '{c}'") })
            }
        }
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_precise_path() {
        let toks = lex("/HTML[1]/BODY[1]/text()[2]").unwrap();
        assert_eq!(
            toks,
            vec![
                Tok::Slash,
                Tok::Name("HTML".into()),
                Tok::LBracket,
                Tok::Number(1.0),
                Tok::RBracket,
                Tok::Slash,
                Tok::Name("BODY".into()),
                Tok::LBracket,
                Tok::Number(1.0),
                Tok::RBracket,
                Tok::Slash,
                Tok::Name("text".into()),
                Tok::LParen,
                Tok::RParen,
                Tok::LBracket,
                Tok::Number(2.0),
                Tok::RBracket,
            ]
        );
    }

    #[test]
    fn lex_operators() {
        let toks = lex("position()>=1 and last()!=2").unwrap();
        assert!(toks.contains(&Tok::Ge));
        assert!(toks.contains(&Tok::Name("and".into())));
        assert!(toks.contains(&Tok::Ne));
    }

    #[test]
    fn lex_strings_both_quotes() {
        assert_eq!(lex("\"a b\"").unwrap(), vec![Tok::Literal("a b".into())]);
        assert_eq!(lex("'it\"s'").unwrap(), vec![Tok::Literal("it\"s".into())]);
    }

    #[test]
    fn lex_axis() {
        let toks = lex("ancestor-or-self::node()").unwrap();
        assert_eq!(toks[0], Tok::Name("ancestor-or-self".into()));
        assert_eq!(toks[1], Tok::ColonColon);
    }

    #[test]
    fn lex_numbers() {
        assert_eq!(lex("3.25").unwrap(), vec![Tok::Number(3.25)]);
        assert_eq!(lex(".5").unwrap(), vec![Tok::Number(0.5)]);
        assert_eq!(lex("7").unwrap(), vec![Tok::Number(7.0)]);
    }

    #[test]
    fn lex_double_slash_and_dots() {
        assert_eq!(lex("..//.").unwrap(), vec![Tok::DotDot, Tok::DoubleSlash, Tok::Dot]);
    }

    #[test]
    fn lex_errors() {
        assert!(lex("'open").is_err());
        assert!(lex("a ! b").is_err());
        assert!(lex("#").is_err());
        assert!(lex("a:b").is_err());
    }

    #[test]
    fn spans_are_byte_offsets() {
        let spanned = lex_spanned("TR[1]/TD").unwrap();
        let offsets: Vec<usize> = spanned.iter().map(|(_, o)| *o).collect();
        assert_eq!(offsets, vec![0, 2, 3, 4, 5, 6]);
        // Multibyte content shifts later offsets by byte length, not chars.
        let spanned = lex_spanned("\"é\" = x").unwrap();
        assert_eq!(spanned[0], (Tok::Literal("é".into()), 0));
        assert_eq!(spanned[1], (Tok::Eq, 5));
        assert_eq!(spanned[2], (Tok::Name("x".into()), 7));
        // Errors report byte offsets too.
        let err = lex("é:").unwrap_err();
        assert_eq!(err.offset, 2);
    }
}
