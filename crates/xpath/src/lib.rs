//! # retroweb-xpath — location language for mapping rules
//!
//! An XPath 1.0 subset engine over the `retroweb-html` DOM, plus the two
//! Retrozilla-specific capabilities the paper builds on it (§3):
//!
//! - **precise-path generation** ([`builder`]): turn a user-selected DOM
//!   node into the fully positional XPath a candidate rule records;
//! - **generalisation operators** ([`generalize`]): the refinement moves
//!   (contextual predicates, position broadening, repetitive-step
//!   deduction, alternative paths) applied when a candidate rule fails on
//!   other pages of the working sample.
//!
//! HTML-mode behaviour: element/attribute name tests match ASCII
//! case-insensitively, so the paper's `BODY[1]/DIV[2]/TABLE[3]` addresses
//! a lowercase DOM. [`parser::parse_lenient`] additionally accepts the
//! paper's informal syntax from Table 2 row b (bare axis names,
//! one-argument `contains`).
//!
//! ```
//! use retroweb_html::parse;
//! use retroweb_xpath::{parser, Engine};
//!
//! let doc = parse("<body><table><tr><td>Runtime</td><td>142 min</td></tr></table></body>");
//! let engine = Engine::new(&doc);
//! let hits = engine.select_str("//TR[1]/TD[2]/text()", doc.root()).unwrap();
//! assert_eq!(doc.text(hits[0]), Some("142 min"));
//!
//! let expr = parser::parse("//TD[contains(., \"min\")]").unwrap();
//! assert_eq!(engine.select(&expr, doc.root()).unwrap().len(), 1);
//! ```

mod ast;
pub mod builder;
mod eval;
mod functions;
pub mod generalize;
mod lexer;
pub mod parser;
mod value;

pub use ast::{Axis, BinaryOp, Expr, LocationPath, NodeTest, Step};
pub use eval::{Engine, EvalError};
pub use functions::normalize_space;
pub use lexer::{lex, LexError, Tok};
pub use parser::{parse, parse_lenient, parse_path, ParseError};
pub use value::{
    format_number, node_name, str_to_number, string_value, to_boolean, to_number,
    to_string_value, NodeRef, Value,
};
