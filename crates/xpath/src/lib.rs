//! # retroweb-xpath — location language for mapping rules
//!
//! An XPath 1.0 subset engine over the `retroweb-html` DOM, plus the two
//! Retrozilla-specific capabilities the paper builds on it (§3):
//!
//! - **precise-path generation** ([`builder`]): turn a user-selected DOM
//!   node into the fully positional XPath a candidate rule records;
//! - **generalisation operators** ([`generalize`]): the refinement moves
//!   (contextual predicates, position broadening, repetitive-step
//!   deduction, alternative paths) applied when a candidate rule fails on
//!   other pages of the working sample.
//!
//! ## Two execution engines: compile → cache → execute
//!
//! Mapping rules are written once and applied to thousands of pages, so
//! the crate ships two behaviour-identical evaluators:
//!
//! - [`Engine`] — the tree-walking interpreter over the parsed [`Expr`].
//!   It is the executable *reference semantics*: simple, obviously
//!   correct, kept for one-shot evaluation and as the oracle in the
//!   differential test suites.
//! - [`CompiledXPath`] + [`Executor`] ([`compile`]) — the production
//!   path. `CompiledXPath::compile` lowers the AST into a flat, immutable
//!   step program (interned name tests, resolved function ops,
//!   specialised positional steps); an `Executor` bound to a document
//!   runs any number of compiled expressions against it, reusing a
//!   document-order rank and scratch buffers across calls.
//!
//! The intended flow for rule application is **compile once per rule
//! set, cache the `CompiledXPath`s (see `retrozilla`'s `RuleRepository`),
//! and execute them over every page with one `Executor` per document**:
//!
//! ```
//! use retroweb_html::parse;
//! use retroweb_xpath::{CompiledXPath, Executor};
//!
//! let rule = CompiledXPath::parse("//TR[2]/TD[2]/text()").unwrap(); // once
//! for html in ["<body><table><tr><td>Runtime</td><td>142 min</td></tr>\
//!               <tr><td>Country</td><td>UK</td></tr></table></body>"] {
//!     let doc = parse(html);
//!     let exec = Executor::new(&doc); // once per page, shared by all rules
//!     let hits = exec.select(&rule, doc.root()).unwrap();
//!     assert_eq!(doc.text(hits[0]), Some("UK"));
//! }
//! ```
//!
//! HTML-mode behaviour: element/attribute name tests match ASCII
//! case-insensitively, so the paper's `BODY[1]/DIV[2]/TABLE[3]` addresses
//! a lowercase DOM. [`parser::parse_lenient`] additionally accepts the
//! paper's informal syntax from Table 2 row b (bare axis names,
//! one-argument `contains`).
//!
//! ```
//! use retroweb_html::parse;
//! use retroweb_xpath::{parser, Engine};
//!
//! let doc = parse("<body><table><tr><td>Runtime</td><td>142 min</td></tr></table></body>");
//! let engine = Engine::new(&doc);
//! let hits = engine.select_str("//TR[1]/TD[2]/text()", doc.root()).unwrap();
//! assert_eq!(doc.text(hits[0]), Some("142 min"));
//!
//! let expr = parser::parse("//TD[contains(., \"min\")]").unwrap();
//! assert_eq!(engine.select(&expr, doc.root()).unwrap().len(), 1);
//! ```

pub mod analyze;
mod ast;
pub mod builder;
pub mod compile;
mod eval;
mod functions;
pub mod fuse;
pub mod generalize;
mod lexer;
pub mod parser;
mod value;

pub use analyze::{always_empty, analyze, Diagnostic, Severity};
pub use ast::{Axis, BinaryOp, Expr, LocationPath, NodeTest, Step};
pub use compile::{CompiledXPath, Executor, ScratchPool};
pub use eval::{Engine, EvalError};
pub use functions::normalize_space;
pub use fuse::{FuseStats, FusedPlan};
pub use lexer::{lex, lex_spanned, LexError, Tok};
pub use parser::{parse, parse_lenient, parse_path, ParseError};
pub use value::{
    format_number, node_name, str_to_number, string_value, string_value_cow, to_boolean, to_number,
    to_string_value, NodeRef, Value,
};
