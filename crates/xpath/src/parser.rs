//! Recursive-descent XPath 1.0 parser.
//!
//! Two modes:
//! - **standard**: the XPath 1.0 grammar (the subset in `ast.rs`);
//! - **lenient**: additionally accepts the paper's informal notation from
//!   Table 2 row b — a bare axis name without `::node()`
//!   (`ancestor-or-self/preceding-sibling//text()`) and one-argument
//!   `contains("…")` (resolved against the context node at evaluation).

use crate::ast::{Axis, BinaryOp, Expr, LocationPath, NodeTest, Step};
use crate::lexer::{lex_spanned, LexError, Tok};
use std::fmt;

/// Parse failure: lexical or syntactic. Both variants carry the byte
/// offset into the input where the failure was detected, so diagnostics
/// can point into the offending expression text.
#[derive(Clone, Debug, PartialEq)]
pub enum ParseError {
    Lex(LexError),
    Syntax { offset: usize, message: String },
}

impl ParseError {
    /// Byte offset into the parsed input where the error was detected.
    pub fn offset(&self) -> usize {
        match self {
            ParseError::Lex(e) => e.offset,
            ParseError::Syntax { offset, .. } => *offset,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Syntax { offset, message } => {
                write!(f, "XPath syntax error at byte {offset}: {message}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

/// Parse a standard XPath 1.0 expression.
pub fn parse(input: &str) -> Result<Expr, ParseError> {
    parse_with(input, false)
}

/// Parse with the paper's lenient extensions enabled.
pub fn parse_lenient(input: &str) -> Result<Expr, ParseError> {
    parse_with(input, true)
}

fn parse_with(input: &str, lenient: bool) -> Result<Expr, ParseError> {
    let spanned = lex_spanned(input)?;
    let mut toks = Vec::with_capacity(spanned.len());
    let mut offsets = Vec::with_capacity(spanned.len());
    for (t, o) in spanned {
        toks.push(t);
        offsets.push(o);
    }
    let mut p = Parser { toks, offsets, end: input.len(), pos: 0, lenient };
    let expr = p.or_expr()?;
    if p.pos != p.toks.len() {
        return Err(p.err("trailing tokens after expression"));
    }
    Ok(expr)
}

/// Parse an expression that must be a plain location path.
pub fn parse_path(input: &str) -> Result<LocationPath, ParseError> {
    match parse(input)? {
        Expr::Path(p) => Ok(p),
        _ => Err(ParseError::Syntax {
            offset: 0,
            message: "expression is not a location path".into(),
        }),
    }
}

const NODE_TYPES: &[&str] = &["comment", "text", "node", "processing-instruction"];

struct Parser {
    toks: Vec<Tok>,
    /// Byte offset of each token in the input; `end` covers "at EOF".
    offsets: Vec<usize>,
    end: usize,
    pos: usize,
    lenient: bool,
}

impl Parser {
    fn err(&self, msg: &str) -> ParseError {
        let offset = self.offsets.get(self.pos).copied().unwrap_or(self.end);
        ParseError::Syntax { offset, message: msg.to_string() }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(&format!("expected '{t}'")))
        }
    }

    // ---- expression grammar --------------------------------------------

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.and_expr()?;
        while self.eat_name_op("or") {
            let right = self.and_expr()?;
            left = Expr::Binary(BinaryOp::Or, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.equality_expr()?;
        while self.eat_name_op("and") {
            let right = self.equality_expr()?;
            left = Expr::Binary(BinaryOp::And, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn equality_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.relational_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Eq) => BinaryOp::Eq,
                Some(Tok::Ne) => BinaryOp::Ne,
                _ => break,
            };
            self.pos += 1;
            let right = self.relational_expr()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn relational_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.additive_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Lt) => BinaryOp::Lt,
                Some(Tok::Le) => BinaryOp::Le,
                Some(Tok::Gt) => BinaryOp::Gt,
                Some(Tok::Ge) => BinaryOp::Ge,
                _ => break,
            };
            self.pos += 1;
            let right = self.additive_expr()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn additive_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.multiplicative_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinaryOp::Add,
                Some(Tok::Minus) => BinaryOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative_expr()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn multiplicative_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.unary_expr()?;
        loop {
            let op = if self.peek() == Some(&Tok::Star) {
                BinaryOp::Mul
            } else if self.peek_name_op("div") {
                BinaryOp::Div
            } else if self.peek_name_op("mod") {
                BinaryOp::Mod
            } else {
                break;
            };
            self.pos += 1;
            let right = self.unary_expr()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn peek_name_op(&self, name: &str) -> bool {
        matches!(self.peek(), Some(Tok::Name(n)) if n == name)
    }

    fn eat_name_op(&mut self, name: &str) -> bool {
        if self.peek_name_op(name) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Tok::Minus) {
            let inner = self.unary_expr()?;
            return Ok(Expr::Negate(Box::new(inner)));
        }
        self.union_expr()
    }

    fn union_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.path_expr()?;
        while self.eat(&Tok::Pipe) {
            let right = self.path_expr()?;
            left = Expr::Union(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn path_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(Tok::Slash)
            | Some(Tok::DoubleSlash)
            | Some(Tok::Dot)
            | Some(Tok::DotDot)
            | Some(Tok::At)
            | Some(Tok::Star) => Ok(Expr::Path(self.location_path()?)),
            Some(Tok::Name(name)) => {
                let name = name.clone();
                if self.peek2() == Some(&Tok::LParen) && !NODE_TYPES.contains(&name.as_str()) {
                    return self.filter_expr();
                }
                Ok(Expr::Path(self.location_path()?))
            }
            Some(Tok::LParen) | Some(Tok::Literal(_)) | Some(Tok::Number(_)) => self.filter_expr(),
            _ => Err(self.err("expected expression")),
        }
    }

    fn filter_expr(&mut self) -> Result<Expr, ParseError> {
        let primary = self.primary_expr()?;
        let mut predicates = Vec::new();
        while self.peek() == Some(&Tok::LBracket) {
            predicates.push(self.predicate()?);
        }
        let path = match self.peek() {
            Some(Tok::Slash) => {
                self.pos += 1;
                Some(self.relative_location_path()?)
            }
            Some(Tok::DoubleSlash) => {
                self.pos += 1;
                let mut rest = self.relative_location_path()?;
                rest.steps.insert(0, Step::new(Axis::DescendantOrSelf, NodeTest::Node));
                Some(rest)
            }
            _ => None,
        };
        if predicates.is_empty() && path.is_none() {
            return Ok(primary);
        }
        Ok(Expr::Filter { primary: Box::new(primary), predicates, path })
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Some(Tok::LParen) => {
                let inner = self.or_expr()?;
                self.expect(&Tok::RParen)?;
                Ok(inner)
            }
            Some(Tok::Literal(s)) => Ok(Expr::Literal(s)),
            Some(Tok::Number(n)) => Ok(Expr::Number(n)),
            Some(Tok::Name(name)) => {
                self.expect(&Tok::LParen)?;
                let mut args = Vec::new();
                if self.peek() != Some(&Tok::RParen) {
                    loop {
                        args.push(self.or_expr()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RParen)?;
                Ok(Expr::Call(name, args))
            }
            _ => Err(self.err("expected primary expression")),
        }
    }

    fn predicate(&mut self) -> Result<Expr, ParseError> {
        self.expect(&Tok::LBracket)?;
        let e = self.or_expr()?;
        self.expect(&Tok::RBracket)?;
        Ok(e)
    }

    // ---- location paths --------------------------------------------------

    fn location_path(&mut self) -> Result<LocationPath, ParseError> {
        match self.peek() {
            Some(Tok::Slash) => {
                self.pos += 1;
                if self.starts_step() {
                    let rel = self.relative_location_path()?;
                    Ok(LocationPath::absolute(rel.steps))
                } else {
                    Ok(LocationPath::absolute(vec![]))
                }
            }
            Some(Tok::DoubleSlash) => {
                self.pos += 1;
                let rel = self.relative_location_path()?;
                let mut steps = vec![Step::new(Axis::DescendantOrSelf, NodeTest::Node)];
                steps.extend(rel.steps);
                Ok(LocationPath::absolute(steps))
            }
            _ => self.relative_location_path(),
        }
    }

    fn starts_step(&self) -> bool {
        matches!(
            self.peek(),
            Some(Tok::Name(_))
                | Some(Tok::Star)
                | Some(Tok::At)
                | Some(Tok::Dot)
                | Some(Tok::DotDot)
        )
    }

    fn relative_location_path(&mut self) -> Result<LocationPath, ParseError> {
        let mut steps = vec![self.step()?];
        loop {
            match self.peek() {
                Some(Tok::Slash) => {
                    self.pos += 1;
                    steps.push(self.step()?);
                }
                Some(Tok::DoubleSlash) => {
                    self.pos += 1;
                    steps.push(Step::new(Axis::DescendantOrSelf, NodeTest::Node));
                    steps.push(self.step()?);
                }
                _ => break,
            }
        }
        Ok(LocationPath::relative(steps))
    }

    fn step(&mut self) -> Result<Step, ParseError> {
        match self.peek() {
            Some(Tok::Dot) => {
                self.pos += 1;
                return Ok(Step::new(Axis::SelfAxis, NodeTest::Node));
            }
            Some(Tok::DotDot) => {
                self.pos += 1;
                return Ok(Step::new(Axis::Parent, NodeTest::Node));
            }
            _ => {}
        }
        // Axis specifier.
        let axis = if self.eat(&Tok::At) {
            Axis::Attribute
        } else if let Some(Tok::Name(name)) = self.peek() {
            let name = name.clone();
            if self.peek2() == Some(&Tok::ColonColon) {
                let axis = Axis::from_name(&name)
                    .ok_or_else(|| self.err(&format!("unknown axis '{name}'")))?;
                self.pos += 2;
                axis
            } else if self.lenient
                && Axis::from_name(&name).is_some()
                && !self.lenient_name_is_test()
            {
                // Paper notation: a bare axis name stands for
                // `axis::node()` (Table 2 row b).
                self.pos += 1;
                return Ok(Step::new(Axis::from_name(&name).unwrap(), NodeTest::Node));
            } else {
                Axis::Child
            }
        } else {
            Axis::Child
        };
        // Node test.
        let test = match self.bump() {
            Some(Tok::Star) => NodeTest::Wildcard,
            Some(Tok::Name(name)) => {
                if self.peek() == Some(&Tok::LParen) && NODE_TYPES.contains(&name.as_str()) {
                    self.pos += 1;
                    self.expect(&Tok::RParen)?;
                    match name.as_str() {
                        "text" => NodeTest::Text,
                        "comment" => NodeTest::Comment,
                        "node" => NodeTest::Node,
                        other => {
                            return Err(self.err(&format!("unsupported node type '{other}()'")))
                        }
                    }
                } else {
                    NodeTest::Name(name)
                }
            }
            _ => return Err(self.err("expected node test")),
        };
        let mut step = Step::new(axis, test);
        while self.peek() == Some(&Tok::LBracket) {
            step.predicates.push(self.predicate()?);
        }
        Ok(step)
    }

    /// In lenient mode an axis-name token could still be a genuine element
    /// name test (e.g. an element literally named `self`). Treat it as a
    /// name test when it is followed by `(` (function) or `[` (predicate
    /// directly on the element).
    fn lenient_name_is_test(&self) -> bool {
        matches!(self.peek2(), Some(Tok::LParen) | Some(Tok::LBracket))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(s: &str) {
        let e = parse(s).unwrap();
        let shown = e.to_string();
        let e2 = parse(&shown).unwrap();
        assert_eq!(e, e2, "display/parse fixpoint failed for {s} -> {shown}");
    }

    #[test]
    fn parses_paper_rule_location() {
        // The mapping rule from §2.3.
        let e =
            parse("BODY[1]/DIV[2]/TABLE[3]/TR[1]/TD[3]/TABLE[1]/TR[6]/TD[1]/text()[1]").unwrap();
        match &e {
            Expr::Path(p) => {
                assert!(!p.absolute);
                assert_eq!(p.steps.len(), 9);
                assert_eq!(p.steps[8].test, NodeTest::Text);
                assert_eq!(p.steps[2].position_predicate(), Some(3.0));
            }
            other => panic!("expected path, got {other:?}"),
        }
    }

    #[test]
    fn parses_table2_rows() {
        // Rows a, c, d, e, f of Table 2 are standard XPath.
        for s in [
            "BODY//TR[6]/TD[1]/text()[1]",
            "BODY//TABLE[1]/TR[1]",
            "BODY//TABLE[1]/TR[position()>=1]",
            "BODY//TABLE[1]/TR[2]/TD[2]/text()",
            "BODY//TABLE[1]/TR[17]/TD[2]/text()",
        ] {
            parse(s).unwrap_or_else(|e| panic!("failed on {s}: {e}"));
            round_trip(s);
        }
    }

    #[test]
    fn parses_table2_row_b_lenient() {
        // Row b uses the paper's shorthand: bare axis names and
        // single-argument contains().
        let s = "BODY//TR[6]/TD[1]/text()[ancestor-or-self/preceding-sibling//text()[contains(\"Runtime:\")]]";
        assert!(parse(s).is_err() || parse(s).is_ok()); // standard mode may reject or mis-read it…
        let e = parse_lenient(s).unwrap(); // …lenient mode must accept it.
        let shown = e.to_string();
        assert!(shown.contains("ancestor-or-self::node()"));
    }

    #[test]
    fn double_slash_expands() {
        let e = parse("//TR").unwrap();
        match e {
            Expr::Path(p) => {
                assert!(p.absolute);
                assert_eq!(p.steps.len(), 2);
                assert_eq!(p.steps[0].axis, Axis::DescendantOrSelf);
                assert_eq!(p.steps[0].test, NodeTest::Node);
                assert_eq!(p.steps[1].test, NodeTest::Name("TR".into()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn abbreviations() {
        round_trip(".");
        round_trip("..");
        round_trip("@href");
        round_trip("*");
        round_trip("./TR");
        round_trip("../TD");
    }

    #[test]
    fn operator_names_vs_name_tests() {
        // `div` as element name test vs as operator.
        let e = parse("div").unwrap();
        assert!(matches!(e, Expr::Path(_)));
        let e = parse("2 div 2").unwrap();
        assert!(matches!(e, Expr::Binary(BinaryOp::Div, _, _)));
        let e = parse("and/or").unwrap(); // both are name tests here
        assert!(matches!(e, Expr::Path(p) if p.steps.len() == 2));
    }

    #[test]
    fn union_of_paths() {
        let e = parse("TR[1]/TD | TR[2]/TD").unwrap();
        assert_eq!(e.union_alternatives().len(), 2);
        round_trip("TR[1]/TD | TR[2]/TD");
    }

    #[test]
    fn function_calls() {
        round_trip("contains(., \"Runtime:\")");
        round_trip("normalize-space(.)");
        round_trip("count(//TR) > 3");
        round_trip("substring-before(text(), \" min\")");
    }

    #[test]
    fn filter_expr_with_path() {
        let e = parse("(//TABLE)[1]/TR").unwrap();
        match e {
            Expr::Filter { predicates, path, .. } => {
                assert_eq!(predicates.len(), 1);
                assert!(path.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nested_predicates() {
        round_trip("BODY//text()[preceding::text()[normalize-space(.) != \"\"][1][contains(., \"Runtime:\")]]");
    }

    #[test]
    fn errors() {
        assert!(parse("").is_err());
        assert!(parse("/[1]").is_err());
        assert!(parse("foo(").is_err());
        assert!(parse("a b").is_err());
        assert!(parse("..::x").is_err());
        assert!(parse("wrongaxis::x").is_err());
    }

    #[test]
    fn syntax_errors_carry_byte_offsets() {
        // `[` of the predicate with no node test before it.
        let err = parse("/[1]").unwrap_err();
        assert_eq!(err.offset(), 1);
        // Error at EOF points one past the end of the input.
        let err = parse("TR[").unwrap_err();
        assert_eq!(err.offset(), 3);
        // Offsets are bytes: the two-byte `é` inside the literal shifts
        // the reported position accordingly.
        let err = parse("contains(\"é\"").unwrap_err();
        assert_eq!(err.offset(), "contains(\"é\"".len());
        assert!(err.to_string().contains("byte"));
    }

    #[test]
    fn root_path() {
        let e = parse("/").unwrap();
        assert!(matches!(e, Expr::Path(p) if p.absolute && p.steps.is_empty()));
    }

    #[test]
    fn numbers_and_arithmetic() {
        round_trip("position() mod 2 = 1");
        round_trip("last() - 1");
        round_trip("-3");
        round_trip("2 + 3 * 4");
    }
}
