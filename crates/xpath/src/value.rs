//! XPath values and type conversions.

use retroweb_html::{Document, NodeData, NodeId};
use std::fmt;

/// A node reference: either a tree node or one of an element's attributes
/// (XPath models attributes as nodes; our DOM stores them inline, so an
/// attribute is addressed as element id + attribute index).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeRef {
    pub id: NodeId,
    pub attr: Option<u32>,
}

impl NodeRef {
    pub fn node(id: NodeId) -> NodeRef {
        NodeRef { id, attr: None }
    }

    pub fn attribute(id: NodeId, index: u32) -> NodeRef {
        NodeRef { id, attr: Some(index) }
    }

    pub fn is_attr(self) -> bool {
        self.attr.is_some()
    }
}

impl fmt::Display for NodeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.attr {
            Some(i) => write!(f, "{}@{}", self.id, i),
            None => write!(f, "{}", self.id),
        }
    }
}

/// Result of evaluating an XPath expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Node-set, kept in document order without duplicates.
    Nodes(Vec<NodeRef>),
    Bool(bool),
    Num(f64),
    Str(String),
}

impl Value {
    pub fn empty() -> Value {
        Value::Nodes(Vec::new())
    }

    pub fn is_nodes(&self) -> bool {
        matches!(self, Value::Nodes(_))
    }

    pub fn as_nodes(&self) -> Option<&[NodeRef]> {
        match self {
            Value::Nodes(ns) => Some(ns),
            _ => None,
        }
    }
}

/// The XPath string-value of a node.
pub fn string_value(doc: &Document, node: NodeRef) -> String {
    string_value_cow(doc, node).into_owned()
}

/// The XPath string-value of a node, borrowing from the document where
/// possible. Text, comment and attribute nodes — the overwhelming
/// majority of nodes mapping-rule predicates touch — return `Borrowed`,
/// so hot predicates like `contains(., "Runtime:")` evaluate without any
/// allocation. Only element/document nodes (whose string-value is the
/// concatenation of their text descendants) allocate.
pub fn string_value_cow<'d>(doc: &'d Document, node: NodeRef) -> std::borrow::Cow<'d, str> {
    use std::borrow::Cow;
    if let Some(attr_idx) = node.attr {
        return doc
            .element(node.id)
            .and_then(|el| el.attrs.get(attr_idx as usize))
            .map(|a| Cow::Borrowed(a.value.as_str()))
            .unwrap_or_default();
    }
    match &doc.node(node.id).data {
        NodeData::Document | NodeData::Element(_) => Cow::Owned(doc.text_content(node.id)),
        NodeData::Text(t) => Cow::Borrowed(t.as_str()),
        NodeData::Comment(c) => Cow::Borrowed(c.as_str()),
        NodeData::Doctype(_) => Cow::Borrowed(""),
    }
}

/// The XPath expanded-name (we have no namespaces, so just the tag or
/// attribute name).
pub fn node_name(doc: &Document, node: NodeRef) -> String {
    if let Some(attr_idx) = node.attr {
        return doc
            .element(node.id)
            .and_then(|el| el.attrs.get(attr_idx as usize))
            .map(|a| a.name.clone())
            .unwrap_or_default();
    }
    doc.tag_name(node.id).unwrap_or("").to_string()
}

/// `string()` conversion.
pub fn to_string_value(doc: &Document, v: &Value) -> String {
    match v {
        Value::Nodes(ns) => ns.first().map(|&n| string_value(doc, n)).unwrap_or_default(),
        Value::Bool(true) => "true".to_string(),
        Value::Bool(false) => "false".to_string(),
        Value::Num(n) => format_number(*n),
        Value::Str(s) => s.clone(),
    }
}

/// `number()` conversion.
pub fn to_number(doc: &Document, v: &Value) -> f64 {
    match v {
        Value::Nodes(_) => str_to_number(&to_string_value(doc, v)),
        Value::Bool(true) => 1.0,
        Value::Bool(false) => 0.0,
        Value::Num(n) => *n,
        Value::Str(s) => str_to_number(s),
    }
}

/// `boolean()` conversion.
pub fn to_boolean(v: &Value) -> bool {
    match v {
        Value::Nodes(ns) => !ns.is_empty(),
        Value::Bool(b) => *b,
        Value::Num(n) => *n != 0.0 && !n.is_nan(),
        Value::Str(s) => !s.is_empty(),
    }
}

/// XPath number formatting: integers print without a decimal point, NaN
/// prints as `NaN`.
pub fn format_number(n: f64) -> String {
    if n.is_nan() {
        "NaN".to_string()
    } else if n.is_infinite() {
        if n > 0.0 {
            "Infinity".to_string()
        } else {
            "-Infinity".to_string()
        }
    } else if n.fract() == 0.0 && n.abs() < 1.0e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// Operand ordering helper for the node-set/scalar comparison rules:
/// restores left/right when the node-set appeared on the right. Shared
/// by the interpreter and the compiled executor so the comparison
/// ladder stays identical by construction.
pub(crate) fn order(a: f64, b: f64, flipped: bool) -> (f64, f64) {
    if flipped {
        (b, a)
    } else {
        (a, b)
    }
}

/// Numeric comparison kernel for the relational operators (shared like
/// [`order`]). Callers guarantee `op` is a comparison operator.
pub(crate) fn cmp_numbers(op: crate::ast::BinaryOp, a: f64, b: f64) -> bool {
    use crate::ast::BinaryOp;
    match op {
        BinaryOp::Eq => a == b,
        BinaryOp::Ne => a != b,
        BinaryOp::Lt => a < b,
        BinaryOp::Le => a <= b,
        BinaryOp::Gt => a > b,
        BinaryOp::Ge => a >= b,
        _ => unreachable!(),
    }
}

/// XPath string→number: optional sign, digits, optional fraction,
/// surrounded by whitespace; anything else is NaN.
pub fn str_to_number(s: &str) -> f64 {
    let t = s.trim();
    if t.is_empty() {
        return f64::NAN;
    }
    // `parse::<f64>` accepts exponents and named constants XPath rejects;
    // check the shape first.
    let mut chars = t.chars().peekable();
    if chars.peek() == Some(&'-') {
        chars.next();
    }
    let mut digits = 0;
    let mut dots = 0;
    for c in chars {
        if c.is_ascii_digit() {
            digits += 1;
        } else if c == '.' {
            dots += 1;
        } else {
            return f64::NAN;
        }
    }
    if digits == 0 || dots > 1 {
        return f64::NAN;
    }
    t.parse::<f64>().unwrap_or(f64::NAN)
}

#[cfg(test)]
mod tests {
    use super::*;
    use retroweb_html::parse;

    #[test]
    fn string_values() {
        let doc = parse("<body><p class=\"big\">a<b>b</b>c</p></body>");
        let p = doc.elements_by_tag("p")[0];
        assert_eq!(string_value(&doc, NodeRef::node(p)), "abc");
        assert_eq!(string_value(&doc, NodeRef::attribute(p, 0)), "big");
        assert_eq!(node_name(&doc, NodeRef::node(p)), "p");
        assert_eq!(node_name(&doc, NodeRef::attribute(p, 0)), "class");
    }

    #[test]
    fn conversions() {
        assert!(!to_boolean(&Value::Str("".into())));
        assert!(to_boolean(&Value::Str("x".into())));
        assert!(!to_boolean(&Value::Num(0.0)));
        assert!(!to_boolean(&Value::Num(f64::NAN)));
        assert!(to_boolean(&Value::Num(-2.0)));
        assert!(!to_boolean(&Value::Nodes(vec![])));
    }

    #[test]
    fn number_parsing() {
        assert_eq!(str_to_number(" 42 "), 42.0);
        assert_eq!(str_to_number("-1.5"), -1.5);
        assert!(str_to_number("108 min").is_nan());
        assert!(str_to_number("").is_nan());
        assert!(str_to_number("1e3").is_nan()); // XPath has no exponents
        assert!(str_to_number("1.2.3").is_nan());
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_number(4.0), "4");
        assert_eq!(format_number(-0.5), "-0.5");
        assert_eq!(format_number(f64::NAN), "NaN");
        assert_eq!(format_number(f64::INFINITY), "Infinity");
    }
}
