//! Soundness suite for the rule linter (`retroweb_xpath::analyze`).
//!
//! The analyzer's load-bearing claim is *emptiness soundness*: any
//! expression it marks always-empty must select zero nodes on ANY
//! document — the same oracle discipline that holds the compiled engine
//! equal to the tree-walker. The generator below is deliberately skewed
//! toward the analyzer's danger zone (attribute/text steps followed by
//! child steps, unsatisfiable positional predicates) so both the
//! empty-marked and clean populations are well represented.
//!
//! Determinism is the second contract: lint is a pure function of the
//! rule text, so repeated runs and display-roundtripped inputs must
//! produce identical diagnostics.

use proptest::prelude::*;
use retroweb_html::parse;
use retroweb_xpath::{
    always_empty, analyze, parse as xparse, CompiledXPath, Engine, Executor, Severity,
};

/// Random nested-table/list documents, in the style of the paper's
/// corpora (attributes included so `@…` steps have something to hit).
fn arb_document() -> impl Strategy<Value = String> {
    let cell = "[a-zA-Z0-9 ]{1,10}";
    let row = prop::collection::vec(cell, 1..4).prop_map(|cells| {
        let tds: String = cells
            .into_iter()
            .enumerate()
            .map(|(i, c)| format!("<td class=\"c{i}\">{c}</td>"))
            .collect();
        format!("<tr>{tds}</tr>")
    });
    let table = prop::collection::vec(row, 1..5)
        .prop_map(|rows| format!("<table id=\"t\">{}</table>", rows.concat()));
    let list = prop::collection::vec("[a-z]{1,8}", 1..5).prop_map(|items| {
        let lis: String = items.into_iter().map(|i| format!("<li>{i}</li>")).collect();
        format!("<ul>{lis}</ul>")
    });
    let para = "[a-zA-Z ]{1,20}".prop_map(|t| format!("<p><b>{t}</b> tail</p>"));
    let block = prop_oneof![table, list, para];
    prop::collection::vec(block, 1..6)
        .prop_map(|blocks| format!("<html><body>{}</body></html>", blocks.concat()))
}

/// Rule-shaped XPaths skewed toward the analyzer's emptiness facts:
/// attribute and leaf node tests mixed freely with downward axes, plus
/// positional predicates on both sides of the satisfiable line.
fn arb_lintable_xpath() -> impl Strategy<Value = String> {
    let tag = prop::sample::select(vec![
        "TABLE",
        "TR",
        "TD",
        "LI",
        "P",
        "B",
        "*",
        "text()",
        "node()",
        "comment()",
        "@class",
        "@id",
        "@*",
    ]);
    let axis = prop::sample::select(vec![
        "",
        "descendant::",
        "descendant-or-self::",
        "following::",
        "preceding::",
        "ancestor::",
        "ancestor-or-self::",
        "following-sibling::",
        "preceding-sibling::",
        "self::",
        "parent::",
    ]);
    let pred = prop_oneof![
        (0u32..4).prop_map(|n| format!("[{n}]")),
        Just("[1][2]".to_string()),
        Just("[2][1]".to_string()),
        Just("[position()=0]".to_string()),
        Just("[position()<1]".to_string()),
        Just("[position()>1]".to_string()),
        Just("[0.5]".to_string()),
        Just("[last()]".to_string()),
        Just("[TD]".to_string()),
        Just("[@class]".to_string()),
        Just("[text()]".to_string()),
        Just("[contains(., \"a\")]".to_string()),
        Just(String::new()),
    ];
    let step = (axis, tag, pred).prop_map(|(a, t, p)| {
        // `@` composes with the attribute shorthand only when the axis is
        // empty; drop the explicit axis in that case.
        if t.starts_with('@') && !a.is_empty() {
            format!("{t}{p}")
        } else {
            format!("{a}{t}{p}")
        }
    });
    (prop::collection::vec(step, 1..5), any::<bool>(), any::<bool>()).prop_map(
        |(steps, absolute, double)| {
            let joined = steps.join("/");
            match (absolute, double) {
                (true, true) => format!("//{joined}"),
                (true, false) => format!("/{joined}"),
                (false, _) => joined,
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // SOUNDNESS: an always-empty verdict means neither engine can ever
    // produce a non-empty node set, from the root or from any node.
    #[test]
    fn always_empty_never_selects(html in arb_document(), xpath in arb_lintable_xpath()) {
        let Ok(expr) = xparse(&xpath) else { return Ok(()) };
        prop_assume!(always_empty(&expr));
        let doc = parse(&html);
        let engine = Engine::new(&doc);
        let exec = Executor::new(&doc);
        let compiled = CompiledXPath::compile(&expr);
        let contexts: Vec<_> = std::iter::once(doc.root())
            .chain(doc.descendants(doc.root()))
            .collect();
        for ctx in contexts {
            if let Ok(nodes) = engine.select_refs(&expr, ctx) {
                prop_assert!(nodes.is_empty(),
                    "{xpath} marked always-empty but interpreter selected {} node(s) from {ctx:?}",
                    nodes.len());
            }
            if let Ok(nodes) = exec.select_refs(&compiled, ctx) {
                prop_assert!(nodes.is_empty(),
                    "{xpath} marked always-empty but compiled engine selected {} node(s) from {ctx:?}",
                    nodes.len());
            }
        }
    }

    // Error-level step/predicate diagnostics on a top-level path imply
    // the always-empty verdict agrees with them (internal consistency:
    // the diagnostics and the oracle come from the same abstraction).
    #[test]
    fn error_free_rules_on_real_shapes(xpath in arb_lintable_xpath()) {
        let Ok(expr) = xparse(&xpath) else { return Ok(()) };
        let diags = analyze(&expr);
        // Spans, when present, index the display form within bounds and
        // on char boundaries.
        let shown = expr.to_string();
        for d in &diags {
            if let Some((s, e)) = d.span {
                prop_assert!(s <= e && e <= shown.len(), "bad span {s}..{e} for {shown}");
                prop_assert!(shown.is_char_boundary(s) && shown.is_char_boundary(e));
            }
        }
        // An always-empty path expression must be explained by at least
        // one Error diagnostic.
        if always_empty(&expr) {
            prop_assert!(diags.iter().any(|d| d.severity == Severity::Error),
                "{xpath} empty but no error diagnostic: {diags:?}");
        }
    }

    // DETERMINISM: lint is a pure function of the rule text — same
    // input, same diagnostics, across repeated runs and across the
    // display/parse round trip (the canonical form rules are stored in).
    #[test]
    fn lint_is_deterministic(xpath in arb_lintable_xpath()) {
        let Ok(expr) = xparse(&xpath) else { return Ok(()) };
        let first = analyze(&expr);
        let second = analyze(&expr);
        prop_assert_eq!(&first, &second, "re-running lint changed the diagnostics");
        let reparsed = xparse(&expr.to_string()).unwrap();
        let through_display = analyze(&reparsed);
        prop_assert_eq!(&first, &through_display,
            "lint differs across the display/parse round trip");
    }
}
