//! Property tests for the XPath engine.
//!
//! The load-bearing invariant of the whole system (§3.2 selection): for
//! ANY node in ANY document, the generated precise path evaluates to
//! exactly that node. Plus display/parse fixpoints and generalisation
//! sanity.

use proptest::prelude::*;
use retroweb_html::{parse, Document, NodeData, NodeId};
use retroweb_xpath::builder::{precise_path, precise_path_from};
use retroweb_xpath::generalize::{broaden_step, strip_positions_from};
use retroweb_xpath::{parse as xparse, Engine, Expr};

/// Random nested-table/list documents, in the style of the paper's
/// corpora.
fn arb_document() -> impl Strategy<Value = String> {
    let cell = "[a-zA-Z0-9 ]{1,10}";
    let row = prop::collection::vec(cell, 1..4).prop_map(|cells| {
        let tds: String = cells.into_iter().map(|c| format!("<td>{c}</td>")).collect();
        format!("<tr>{tds}</tr>")
    });
    let table = prop::collection::vec(row, 1..5)
        .prop_map(|rows| format!("<table>{}</table>", rows.concat()));
    let list = prop::collection::vec("[a-z]{1,8}", 1..5)
        .prop_map(|items| {
            let lis: String = items.into_iter().map(|i| format!("<li>{i}</li>")).collect();
            format!("<ul>{lis}</ul>")
        });
    let para = "[a-zA-Z ]{1,20}".prop_map(|t| format!("<p><b>{t}</b> tail</p>"));
    let block = prop_oneof![table, list, para];
    prop::collection::vec(block, 1..6)
        .prop_map(|blocks| format!("<html><body>{}</body></html>", blocks.concat()))
}

fn all_addressable(doc: &Document) -> Vec<NodeId> {
    doc.descendants(doc.root())
        .filter(|&n| !matches!(doc.node(n).data, NodeData::Doctype(_)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn precise_path_selects_exactly_its_node(html in arb_document(), pick in any::<u32>()) {
        let doc = parse(&html);
        let nodes = all_addressable(&doc);
        prop_assume!(!nodes.is_empty());
        let target = nodes[pick as usize % nodes.len()];
        let path = precise_path(&doc, target).unwrap();
        let engine = Engine::new(&doc);
        let got = engine.select(&Expr::Path(path.clone()), doc.root()).unwrap();
        prop_assert_eq!(got, vec![target], "path: {}", path);
    }

    #[test]
    fn precise_path_display_parses_back_identically(html in arb_document(), pick in any::<u32>()) {
        let doc = parse(&html);
        let nodes = all_addressable(&doc);
        prop_assume!(!nodes.is_empty());
        let target = nodes[pick as usize % nodes.len()];
        let path = precise_path(&doc, target).unwrap();
        let shown = path.to_string();
        let reparsed = xparse(&shown).unwrap();
        prop_assert_eq!(reparsed.to_string(), shown);
        // And the reparsed expression still selects the same node.
        let engine = Engine::new(&doc);
        let got = engine.select(&reparsed, doc.root()).unwrap();
        prop_assert_eq!(got, vec![target]);
    }

    #[test]
    fn relative_precise_path_matches_from_any_ancestor(
        html in arb_document(),
        pick in any::<u32>(),
        anc_pick in any::<u32>(),
    ) {
        let doc = parse(&html);
        let nodes = all_addressable(&doc);
        prop_assume!(!nodes.is_empty());
        let target = nodes[pick as usize % nodes.len()];
        let ancestors: Vec<NodeId> = doc.ancestors(target).filter(|&a| a != doc.root()).collect();
        prop_assume!(!ancestors.is_empty());
        let anc = ancestors[anc_pick as usize % ancestors.len()];
        let rel = precise_path_from(&doc, target, anc).unwrap();
        let engine = Engine::new(&doc);
        let got = engine.select(&Expr::Path(rel), anc).unwrap();
        prop_assert_eq!(got, vec![target]);
    }

    #[test]
    fn strip_positions_yields_superset(html in arb_document(), pick in any::<u32>()) {
        let doc = parse(&html);
        let nodes = all_addressable(&doc);
        prop_assume!(!nodes.is_empty());
        let target = nodes[pick as usize % nodes.len()];
        let path = precise_path(&doc, target).unwrap();
        let engine = Engine::new(&doc);
        for from in 0..path.steps.len() {
            let loosened = strip_positions_from(&path, from);
            let got = engine.select(&Expr::Path(loosened), doc.root()).unwrap();
            prop_assert!(got.contains(&target), "strip at {} lost the target", from);
        }
    }

    #[test]
    fn broaden_step_yields_superset(html in arb_document(), pick in any::<u32>()) {
        let doc = parse(&html);
        let nodes = all_addressable(&doc);
        prop_assume!(!nodes.is_empty());
        let target = nodes[pick as usize % nodes.len()];
        let path = precise_path(&doc, target).unwrap();
        let engine = Engine::new(&doc);
        for idx in 0..path.steps.len() {
            let broadened = broaden_step(&path, idx);
            let got = engine.select(&Expr::Path(broadened), doc.root()).unwrap();
            prop_assert!(got.contains(&target), "broaden at {} lost the target", idx);
        }
    }

    #[test]
    fn parser_never_panics(input in "\\PC{0,80}") {
        let _ = xparse(&input);
        let _ = retroweb_xpath::parse_lenient(&input);
    }

    #[test]
    fn display_parse_fixpoint_for_parsed_expressions(input in "\\PC{0,60}") {
        if let Ok(expr) = xparse(&input) {
            let shown = expr.to_string();
            let reparsed = xparse(&shown)
                .unwrap_or_else(|e| panic!("display of parsed expr must reparse: {shown} ({e})"));
            prop_assert_eq!(reparsed.to_string(), shown);
        }
    }

    #[test]
    fn node_sets_are_sorted_and_deduped(html in arb_document()) {
        let doc = parse(&html);
        let engine = Engine::new(&doc);
        for xpath in ["//TD | //LI", "//*", "//text()", "//TR/TD/text() | //text()"] {
            let expr = xparse(xpath).unwrap();
            let got = engine.select(&expr, doc.root()).unwrap();
            for pair in got.windows(2) {
                prop_assert_eq!(
                    doc.compare_order(pair[0], pair[1]),
                    std::cmp::Ordering::Less,
                    "{} not sorted/deduped", xpath
                );
            }
        }
    }

    #[test]
    fn count_agrees_with_select(html in arb_document()) {
        let doc = parse(&html);
        let engine = Engine::new(&doc);
        for xpath in ["//TD", "//LI", "//P/B"] {
            let n = engine.select(&xparse(xpath).unwrap(), doc.root()).unwrap().len();
            let counted = engine
                .eval(&xparse(&format!("count({xpath})")).unwrap(), doc.root())
                .unwrap();
            prop_assert_eq!(counted, retroweb_xpath::Value::Num(n as f64));
        }
    }
}
