//! Property tests for the XPath engine.
//!
//! The load-bearing invariant of the whole system (§3.2 selection): for
//! ANY node in ANY document, the generated precise path evaluates to
//! exactly that node. Plus display/parse fixpoints and generalisation
//! sanity.

use proptest::prelude::*;
use retroweb_html::{parse, Document, NodeData, NodeId};
use retroweb_xpath::builder::{precise_path, precise_path_from};
use retroweb_xpath::generalize::{broaden_step, strip_positions_from};
use retroweb_xpath::{parse as xparse, CompiledXPath, Engine, Executor, Expr};

/// Random nested-table/list documents, in the style of the paper's
/// corpora.
fn arb_document() -> impl Strategy<Value = String> {
    let cell = "[a-zA-Z0-9 ]{1,10}";
    let row = prop::collection::vec(cell, 1..4).prop_map(|cells| {
        let tds: String = cells.into_iter().map(|c| format!("<td>{c}</td>")).collect();
        format!("<tr>{tds}</tr>")
    });
    let table = prop::collection::vec(row, 1..5)
        .prop_map(|rows| format!("<table>{}</table>", rows.concat()));
    let list = prop::collection::vec("[a-z]{1,8}", 1..5).prop_map(|items| {
        let lis: String = items.into_iter().map(|i| format!("<li>{i}</li>")).collect();
        format!("<ul>{lis}</ul>")
    });
    let para = "[a-zA-Z ]{1,20}".prop_map(|t| format!("<p><b>{t}</b> tail</p>"));
    let block = prop_oneof![table, list, para];
    prop::collection::vec(block, 1..6)
        .prop_map(|blocks| format!("<html><body>{}</body></html>", blocks.concat()))
}

fn all_addressable(doc: &Document) -> Vec<NodeId> {
    doc.descendants(doc.root())
        .filter(|&n| !matches!(doc.node(n).data, NodeData::Doctype(_)))
        .collect()
}

/// Random rule-shaped XPath expressions: the axes, node tests and
/// predicate forms the precise-path builder and the §3.4 generalisation
/// operators emit, composed freely.
fn arb_xpath() -> impl Strategy<Value = String> {
    let tag = prop::sample::select(vec![
        "TABLE", "TR", "TD", "UL", "LI", "P", "B", "DIV", "*", "text()", "node()",
    ]);
    let axis = prop::sample::select(vec![
        "",
        "descendant::",
        "descendant-or-self::",
        "following::",
        "preceding::",
        "ancestor::",
        "ancestor-or-self::",
        "following-sibling::",
        "preceding-sibling::",
        "self::",
    ]);
    let pred = prop_oneof![
        (1u32..5).prop_map(|n| format!("[{n}]")),
        Just("[position()>=1]".to_string()),
        Just("[position()>1]".to_string()),
        Just("[last()]".to_string()),
        Just("[position() = last()]".to_string()),
        Just("[contains(., \"a\")]".to_string()),
        Just("[normalize-space(.) != \"\"]".to_string()),
        Just("[count(TD) > 1]".to_string()),
        Just("[preceding::text()[1]]".to_string()),
        Just(String::new()),
    ];
    let step = (axis, tag, pred).prop_map(|(a, t, p)| format!("{a}{t}{p}"));
    (prop::collection::vec(step, 1..5), any::<bool>()).prop_map(|(steps, double)| {
        format!("{}{}", if double { "//" } else { "/" }, steps.join("/"))
    })
}

/// Assert interpreter ≡ compiled IR for one expression on one document:
/// identical node-sets (via `select_refs`) and identical err-ness.
fn assert_engines_agree(
    doc: &Document,
    xpath: &str,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let Ok(expr) = xparse(xpath) else { return Ok(()) };
    let engine = Engine::new(doc);
    let exec = Executor::new(doc);
    let compiled = CompiledXPath::compile(&expr);
    let interpreted = engine.select_refs(&expr, doc.root());
    let executed = exec.select_refs(&compiled, doc.root());
    match (interpreted, executed) {
        (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "{}", xpath),
        (Err(_), Err(_)) => {}
        (a, b) => {
            return Err(proptest::test_runner::TestCaseError::Fail(format!(
                "{xpath}: interpreter {a:?} vs compiled {b:?}"
            )))
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn precise_path_selects_exactly_its_node(html in arb_document(), pick in any::<u32>()) {
        let doc = parse(&html);
        let nodes = all_addressable(&doc);
        prop_assume!(!nodes.is_empty());
        let target = nodes[pick as usize % nodes.len()];
        let path = precise_path(&doc, target).unwrap();
        let engine = Engine::new(&doc);
        let got = engine.select(&Expr::Path(path.clone()), doc.root()).unwrap();
        prop_assert_eq!(got, vec![target], "path: {}", path);
    }

    #[test]
    fn precise_path_display_parses_back_identically(html in arb_document(), pick in any::<u32>()) {
        let doc = parse(&html);
        let nodes = all_addressable(&doc);
        prop_assume!(!nodes.is_empty());
        let target = nodes[pick as usize % nodes.len()];
        let path = precise_path(&doc, target).unwrap();
        let shown = path.to_string();
        let reparsed = xparse(&shown).unwrap();
        prop_assert_eq!(reparsed.to_string(), shown);
        // And the reparsed expression still selects the same node.
        let engine = Engine::new(&doc);
        let got = engine.select(&reparsed, doc.root()).unwrap();
        prop_assert_eq!(got, vec![target]);
    }

    #[test]
    fn relative_precise_path_matches_from_any_ancestor(
        html in arb_document(),
        pick in any::<u32>(),
        anc_pick in any::<u32>(),
    ) {
        let doc = parse(&html);
        let nodes = all_addressable(&doc);
        prop_assume!(!nodes.is_empty());
        let target = nodes[pick as usize % nodes.len()];
        let ancestors: Vec<NodeId> = doc.ancestors(target).filter(|&a| a != doc.root()).collect();
        prop_assume!(!ancestors.is_empty());
        let anc = ancestors[anc_pick as usize % ancestors.len()];
        let rel = precise_path_from(&doc, target, anc).unwrap();
        let engine = Engine::new(&doc);
        let got = engine.select(&Expr::Path(rel), anc).unwrap();
        prop_assert_eq!(got, vec![target]);
    }

    #[test]
    fn strip_positions_yields_superset(html in arb_document(), pick in any::<u32>()) {
        let doc = parse(&html);
        let nodes = all_addressable(&doc);
        prop_assume!(!nodes.is_empty());
        let target = nodes[pick as usize % nodes.len()];
        let path = precise_path(&doc, target).unwrap();
        let engine = Engine::new(&doc);
        for from in 0..path.steps.len() {
            let loosened = strip_positions_from(&path, from);
            let got = engine.select(&Expr::Path(loosened), doc.root()).unwrap();
            prop_assert!(got.contains(&target), "strip at {} lost the target", from);
        }
    }

    #[test]
    fn broaden_step_yields_superset(html in arb_document(), pick in any::<u32>()) {
        let doc = parse(&html);
        let nodes = all_addressable(&doc);
        prop_assume!(!nodes.is_empty());
        let target = nodes[pick as usize % nodes.len()];
        let path = precise_path(&doc, target).unwrap();
        let engine = Engine::new(&doc);
        for idx in 0..path.steps.len() {
            let broadened = broaden_step(&path, idx);
            let got = engine.select(&Expr::Path(broadened), doc.root()).unwrap();
            prop_assert!(got.contains(&target), "broaden at {} lost the target", idx);
        }
    }

    #[test]
    fn parser_never_panics(input in "\\PC{0,80}") {
        let _ = xparse(&input);
        let _ = retroweb_xpath::parse_lenient(&input);
    }

    #[test]
    fn display_parse_fixpoint_for_parsed_expressions(input in "\\PC{0,60}") {
        if let Ok(expr) = xparse(&input) {
            let shown = expr.to_string();
            let reparsed = xparse(&shown)
                .unwrap_or_else(|e| panic!("display of parsed expr must reparse: {shown} ({e})"));
            prop_assert_eq!(reparsed.to_string(), shown);
        }
    }

    #[test]
    fn node_sets_are_sorted_and_deduped(html in arb_document()) {
        let doc = parse(&html);
        let engine = Engine::new(&doc);
        for xpath in ["//TD | //LI", "//*", "//text()", "//TR/TD/text() | //text()"] {
            let expr = xparse(xpath).unwrap();
            let got = engine.select(&expr, doc.root()).unwrap();
            for pair in got.windows(2) {
                prop_assert_eq!(
                    doc.compare_order(pair[0], pair[1]),
                    std::cmp::Ordering::Less,
                    "{} not sorted/deduped", xpath
                );
            }
        }
    }

    #[test]
    fn compiled_equals_interpreter_on_precise_paths(html in arb_document(), pick in any::<u32>()) {
        // The tentpole invariant: on the exact expressions mapping rules
        // record, the compiled IR engine is indistinguishable from the
        // tree-walking reference engine.
        let doc = parse(&html);
        let nodes = all_addressable(&doc);
        prop_assume!(!nodes.is_empty());
        let target = nodes[pick as usize % nodes.len()];
        let path = precise_path(&doc, target).unwrap();
        assert_engines_agree(&doc, &path.to_string())?;
        // And on its generalisations (position-stripped variants).
        for from in 0..path.steps.len() {
            assert_engines_agree(&doc, &strip_positions_from(&path, from).to_string())?;
        }
    }

    #[test]
    fn compiled_equals_interpreter_on_rule_shapes(html in arb_document(), xpath in arb_xpath()) {
        let doc = parse(&html);
        assert_engines_agree(&doc, &xpath)?;
    }

    #[test]
    fn compiled_equals_interpreter_on_unions(
        html in arb_document(),
        a in arb_xpath(),
        b in arb_xpath(),
    ) {
        let doc = parse(&html);
        assert_engines_agree(&doc, &format!("{a} | {b}"))?;
    }

    #[test]
    fn compiled_equals_interpreter_on_values(html in arb_document(), xpath in arb_xpath()) {
        // Value-level equivalence (numbers/strings/booleans), through
        // count()/string()/boolean() wrappers around generated paths.
        let doc = parse(&html);
        for wrapped in [
            format!("count({xpath})"),
            format!("string({xpath})"),
            format!("boolean({xpath})"),
            format!("normalize-space(string({xpath}))"),
        ] {
            let Ok(expr) = xparse(&wrapped) else { continue };
            let compiled = CompiledXPath::compile(&expr);
            let interpreted = Engine::new(&doc).eval(&expr, doc.root());
            let executed = Executor::new(&doc).eval(&compiled, doc.root());
            match (interpreted, executed) {
                (Ok(x), Ok(y)) => prop_assert_eq!(x, y, "{}", wrapped),
                (Err(_), Err(_)) => {}
                (x, y) => prop_assert!(false, "{}: {:?} vs {:?}", wrapped, x, y),
            }
        }
    }

    #[test]
    fn count_agrees_with_select(html in arb_document()) {
        let doc = parse(&html);
        let engine = Engine::new(&doc);
        for xpath in ["//TD", "//LI", "//P/B"] {
            let n = engine.select(&xparse(xpath).unwrap(), doc.root()).unwrap().len();
            let counted = engine
                .eval(&xparse(&format!("count({xpath})")).unwrap(), doc.root())
                .unwrap();
            prop_assert_eq!(counted, retroweb_xpath::Value::Num(n as f64));
        }
    }
}
