//! XPath 1.0 semantic edge cases, table-driven: conversions, comparison
//! rules, function corner cases, axis orderings and filter expressions.

use retroweb_html::parse as parse_html;
use retroweb_xpath::{parse, Engine, Value};

const DOC: &str = "<html><body>\
    <div id=\"a\" class=\"x\"><p>one</p><p>two</p><p>three</p></div>\
    <div id=\"b\"><span>10</span><span>20</span><span>5</span></div>\
    <table><tr><td>1</td><td></td></tr><tr><td>2</td><td>x</td></tr></table>\
    </body></html>";

fn eval(xpath: &str) -> Value {
    let doc = parse_html(DOC);
    let engine = Engine::new(&doc);
    let expr = parse(xpath).unwrap_or_else(|e| panic!("{xpath}: {e}"));
    engine.eval(&expr, doc.root()).unwrap_or_else(|e| panic!("{xpath}: {e}"))
}

fn select_count(xpath: &str) -> usize {
    let doc = parse_html(DOC);
    let engine = Engine::new(&doc);
    engine.select_str(xpath, doc.root()).unwrap().len()
}

#[test]
fn arithmetic_edge_cases() {
    assert_eq!(eval("1 div 0"), Value::Num(f64::INFINITY));
    assert_eq!(eval("-1 div 0"), Value::Num(f64::NEG_INFINITY));
    match eval("0 div 0") {
        Value::Num(n) => assert!(n.is_nan()),
        other => panic!("{other:?}"),
    }
    assert_eq!(eval("5 mod 2"), Value::Num(1.0));
    assert_eq!(eval("5 mod -2"), Value::Num(1.0));
    assert_eq!(eval("-5 mod 2"), Value::Num(-1.0));
    assert_eq!(eval("- 3 + 1"), Value::Num(-2.0));
}

#[test]
fn number_string_conversions() {
    assert_eq!(eval("number(\" 12 \")"), Value::Num(12.0));
    match eval("number(\"12 min\")") {
        Value::Num(n) => assert!(n.is_nan()),
        other => panic!("{other:?}"),
    }
    assert_eq!(eval("string(1 div 0)"), Value::Str("Infinity".into()));
    assert_eq!(eval("string(0.5)"), Value::Str("0.5".into()));
    assert_eq!(eval("string(4)"), Value::Str("4".into()));
    assert_eq!(eval("string(true())"), Value::Str("true".into()));
}

#[test]
fn nodeset_to_scalar_comparisons_are_existential() {
    // //SPAN has string values 10, 20, 5.
    assert_eq!(eval("//SPAN = 10"), Value::Bool(true));
    assert_eq!(eval("//SPAN = 11"), Value::Bool(false));
    assert_eq!(eval("//SPAN != 10"), Value::Bool(true)); // some span differs
    assert_eq!(eval("//SPAN > 15"), Value::Bool(true));
    assert_eq!(eval("//SPAN < 6"), Value::Bool(true));
    assert_eq!(eval("//SPAN > 25"), Value::Bool(false));
    // Flipped operand order.
    assert_eq!(eval("15 < //SPAN"), Value::Bool(true));
    assert_eq!(eval("25 < //SPAN"), Value::Bool(false));
}

#[test]
fn nodeset_to_nodeset_comparison() {
    // Exists td and span with equal string value? td values: 1,"",2,x.
    assert_eq!(eval("//TD = //SPAN"), Value::Bool(false));
    assert_eq!(eval("//P = //P"), Value::Bool(true));
    // Empty node-set comparisons are always false.
    assert_eq!(eval("//NOPE = //P"), Value::Bool(false));
    assert_eq!(eval("//NOPE != //P"), Value::Bool(false));
}

#[test]
fn boolean_of_empty_string_cell() {
    // The empty td has string-value "" → boolean false, but the node
    // exists so the node-set is true.
    assert_eq!(eval("boolean(//TR[1]/TD[2])"), Value::Bool(true));
    assert_eq!(eval("string(//TR[1]/TD[2]) = \"\""), Value::Bool(true));
}

#[test]
fn function_edge_cases() {
    assert_eq!(eval("substring-before(\"ab\", \"z\")"), Value::Str("".into()));
    assert_eq!(eval("substring-after(\"ab\", \"z\")"), Value::Str("".into()));
    assert_eq!(eval("translate(\"abc\", \"ab\", \"A\")"), Value::Str("Ac".into()));
    assert_eq!(eval("ends-with(\"108 min\", \"min\")"), Value::Bool(true));
    assert_eq!(eval("sum(//SPAN)"), Value::Num(35.0));
    assert_eq!(eval("string-length(//DIV[2]/SPAN[1])"), Value::Num(2.0));
    assert_eq!(eval("concat(\"a\", 1, true())"), Value::Str("a1true".into()));
    assert_eq!(eval("name(//DIV)"), Value::Str("div".into()));
    assert_eq!(eval("name(//NOPE)"), Value::Str("".into()));
}

#[test]
fn position_and_last_in_nested_predicates() {
    assert_eq!(select_count("//P[position() = last()]"), 1);
    assert_eq!(select_count("//P[position() < last()]"), 2);
    assert_eq!(select_count("//P[position() mod 2 = 1]"), 2);
    // last() inside a filter expression counts the whole document set.
    assert_eq!(select_count("(//P)[last()]"), 1);
}

#[test]
fn attribute_axis_variants() {
    let doc = parse_html(DOC);
    let engine = Engine::new(&doc);
    // @* matches any attribute.
    let expr = parse("//DIV[@*]").unwrap();
    assert_eq!(engine.select(&expr, doc.root()).unwrap().len(), 2);
    let expr = parse("//DIV[@class]").unwrap();
    assert_eq!(engine.select(&expr, doc.root()).unwrap().len(), 1);
    // Attribute string value in equality.
    let expr = parse("//DIV[@id = \"b\"]/SPAN").unwrap();
    assert_eq!(engine.select(&expr, doc.root()).unwrap().len(), 3);
    // count() over attributes.
    let expr = parse("count(//DIV[1]/@*)").unwrap();
    assert_eq!(engine.eval(&expr, doc.root()).unwrap(), Value::Num(2.0));
}

#[test]
fn axis_orderings() {
    let doc = parse_html(DOC);
    let engine = Engine::new(&doc);
    let texts = |xpath: &str| -> Vec<String> {
        engine
            .select_str(xpath, doc.root())
            .unwrap()
            .into_iter()
            .map(|n| doc.text_content(n))
            .collect()
    };
    // Reverse axes take position from nearest.
    assert_eq!(texts("//P[3]/preceding-sibling::*[1]"), vec!["two"]);
    assert_eq!(texts("//P[3]/preceding-sibling::*[2]"), vec!["one"]);
    // Forward sibling axis.
    assert_eq!(texts("//P[1]/following-sibling::*[1]"), vec!["two"]);
    // ancestor-or-self includes self first (nearest).
    assert_eq!(texts("//P[1]/ancestor-or-self::*[1]"), vec!["one"]);
    // following axis crosses subtree boundaries in document order.
    let f = texts("//DIV[1]/following::SPAN");
    assert_eq!(f, vec!["10", "20", "5"]);
}

#[test]
fn union_type_errors_and_mixed_unions() {
    let doc = parse_html(DOC);
    let engine = Engine::new(&doc);
    assert!(
        engine
            .eval(&parse("//P | 3").unwrap_or(retroweb_xpath::Expr::Number(0.0)), doc.root())
            .is_err()
            || parse("//P | 3").is_err()
    );
    // Union of overlapping sets dedups.
    assert_eq!(select_count("//P | //DIV[1]/P"), 3);
}

#[test]
fn descendant_vs_descendant_or_self() {
    assert_eq!(select_count("//DIV[1]/descendant::P"), 3);
    assert_eq!(select_count("//DIV[1]/descendant-or-self::*"), 4);
    assert_eq!(select_count("/descendant::DIV"), 2);
}

#[test]
fn text_node_tests() {
    // Text node selection skips element-only content.
    assert_eq!(select_count("//DIV[1]/text()"), 0);
    assert_eq!(select_count("//P/text()"), 3);
    assert_eq!(select_count("//node()[self::P]"), 3);
}
