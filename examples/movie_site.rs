//! Full pipeline on a generated imdb-like site: clustering (Figure 1
//! step 1), rule building for all nine movie components (step 2), and
//! XML + XSD extraction with a-posteriori aggregation (step 3, §4).
//!
//! Run with: `cargo run --example movie_site`

use retroweb::cluster::{cluster_pages, signature, ClusterParams, PageSignature};
use retroweb::html::parse;
use retroweb::retrozilla::User;
use retroweb::retrozilla::{
    build_rules, extract_cluster_html, working_sample, ClusterRules, RuleRepository,
    ScenarioConfig, SimulatedUser, StructureNode,
};
use retroweb::sitegen::{mixed_corpus, movie, MovieSiteSpec, MOVIE_COMPONENTS};

fn main() {
    // ---- Step 1: clustering -------------------------------------------------
    // A mixed crawl: movie pages, product pages, news pages.
    let corpus = mixed_corpus(7, 8);
    let sigs: Vec<PageSignature> =
        corpus.iter().map(|p| signature(&p.url, &parse(&p.html))).collect();
    let clusters = cluster_pages(&sigs, &ClusterParams::default());
    println!("Step 1 — clustering a {}-page crawl:", corpus.len());
    for c in &clusters {
        println!("  cluster \"{}\": {} pages", c.name, c.members.len());
    }

    // ---- Step 2: semantic analysis on the movie cluster ---------------------
    let spec = MovieSiteSpec { n_pages: 20, seed: 7, p_mixed_runtime: 0.2, ..Default::default() };
    let site = movie::generate(&spec);
    let sample = working_sample(&site, 10); // ~10 pages, per §3.1
    let mut user = SimulatedUser::new();
    let reports = build_rules(MOVIE_COMPONENTS, &sample, &mut user, &ScenarioConfig::default());

    println!("\nStep 2 — mapping rules over a {}-page working sample:", sample.len());
    println!(
        "  {:<10} {:>3} {:<11} {:<13} {:<6}  strategies",
        "component", "it", "optionality", "multiplicity", "format"
    );
    for r in &reports {
        println!(
            "  {:<10} {:>3} {:<11} {:<13} {:<6}  {}",
            r.component,
            r.iterations,
            r.rule.optionality.to_string(),
            r.rule.multiplicity.to_string(),
            r.rule.format.to_string(),
            if r.strategies.is_empty() {
                "(candidate was valid)".to_string()
            } else {
                r.strategies.join("; ")
            }
        );
        assert!(r.ok, "{} failed", r.component);
    }
    let stats = user.stats();
    println!(
        "  user effort: {} selections + {} interpretations + {} validations = {} interactions",
        stats.selections,
        stats.interpretations,
        stats.validations,
        stats.total()
    );

    // Record in the repository with an aggregated structure (§4): the
    // people-related leaves nest under a `credits` group.
    let mut cluster = ClusterRules::new("imdb-movies", "imdb-movie");
    for r in reports {
        cluster.rules.push(r.rule);
    }
    cluster.structure = Some(vec![
        StructureNode::Component("title".into()),
        StructureNode::Component("aka".into()),
        StructureNode::Component("runtime".into()),
        StructureNode::Component("country".into()),
        StructureNode::Component("language".into()),
        StructureNode::Component("rating".into()),
        StructureNode::Component("genre".into()),
        StructureNode::Group {
            name: "credits".into(),
            children: vec![
                StructureNode::Component("director".into()),
                StructureNode::Component("actor".into()),
            ],
        },
    ]);
    let repo = RuleRepository::new();
    repo.record(cluster.clone());
    let repo_path = std::env::temp_dir().join("retrozilla-movie-rules.json");
    repo.save(&repo_path).expect("save repository");
    println!("\n  rules recorded to {}", repo_path.display());

    // ---- Step 3: extraction over the whole cluster --------------------------
    let all_pages: Vec<(String, String)> =
        site.pages.iter().map(|p| (p.url.clone(), p.html.clone())).collect();
    let result = extract_cluster_html(&cluster, &all_pages);
    println!("\nStep 3 — extraction over {} pages:", all_pages.len());
    println!("  failures detected: {}", result.failures.len());
    let xml = result.xml.to_string_with(2);
    let first_movie_end =
        xml.match_indices("</imdb-movie>").next().map(|(i, m)| i + m.len()).unwrap_or(xml.len());
    println!("  first extracted record:\n");
    for line in xml[..first_movie_end].lines().skip(2) {
        println!("    {line}");
    }
    println!("\n  XML Schema:\n");
    for line in result.schema.to_xsd().to_string_with(2).lines() {
        println!("    {line}");
    }
}
