//! Data integration over a news site: multivalued mixed-content
//! paragraphs, a comments section aggregated a-posteriori into a
//! `users-opinion`-style group (the §4 aggregation example), and export
//! to XML consumed back through the XML reader (the "external agent"
//! role of §3.5).
//!
//! Run with: `cargo run --example news_digest`

use retroweb::retrozilla::{
    build_rules, extract_cluster_parallel, working_sample, ClusterRules, ScenarioConfig,
    SimulatedUser, StructureNode,
};
use retroweb::sitegen::{news, NewsSiteSpec};
use retroweb::xml::parse_xml;

fn main() {
    let spec = NewsSiteSpec { n_pages: 14, seed: 19, ..Default::default() };
    let site = news::generate(&spec);
    let sample = working_sample(&site, 9);

    let components = ["headline", "author", "date", "paragraph", "commenter", "comment"];
    let mut user = SimulatedUser::new();
    let reports = build_rules(&components, &sample, &mut user, &ScenarioConfig::default());

    println!("Rules over the ledger-articles cluster:");
    let mut cluster = ClusterRules::new("ledger-articles", "article");
    for r in reports {
        assert!(r.ok, "{}: {:?}\n{}", r.component, r.strategies, r.final_table.render());
        println!(
            "  {:<10} {:<9} {:<13} {:<5}  {}",
            r.component,
            r.rule.optionality.to_string(),
            r.rule.multiplicity.to_string(),
            r.rule.format.to_string(),
            if r.strategies.is_empty() { "-".to_string() } else { r.strategies.join("; ") }
        );
        cluster.rules.push(r.rule);
    }

    // A-posteriori aggregation (§4): byline facts group under `byline`,
    // reader feedback under `reader-feedback`.
    cluster.structure = Some(vec![
        StructureNode::Component("headline".into()),
        StructureNode::Group {
            name: "byline".into(),
            children: vec![
                StructureNode::Component("author".into()),
                StructureNode::Component("date".into()),
            ],
        },
        StructureNode::Component("paragraph".into()),
        StructureNode::Group {
            name: "reader-feedback".into(),
            children: vec![
                StructureNode::Component("commenter".into()),
                StructureNode::Component("comment".into()),
            ],
        },
    ]);

    // Parallel extraction over the whole site (migration workload).
    let pages: Vec<(String, String)> =
        site.pages.iter().map(|p| (p.url.clone(), p.html.clone())).collect();
    let result = extract_cluster_parallel(&cluster, &pages, 4);
    assert!(result.failures.is_empty(), "{:?}", result.failures);

    let xml_text = result.xml.to_string_with(2);
    println!("\nExtracted {} articles ({} bytes of XML).", pages.len(), xml_text.len());

    // An external agent consumes the XML (here: a digest builder using
    // the strict XML reader).
    let root = parse_xml(&xml_text).expect("extraction output is well-formed");
    println!("\nDigest (headline / date / #paragraphs / #comments):");
    for article in root.children_named("article").take(6) {
        let headline = article.child("headline").map(|e| e.text_content()).unwrap_or_default();
        let date = article
            .child("byline")
            .and_then(|b| b.child("date"))
            .map(|e| e.text_content())
            .unwrap_or_default();
        let paras = article.children_named("paragraph").count();
        let comments = article
            .child("reader-feedback")
            .map(|f| f.children_named("comment").count())
            .unwrap_or(0);
        println!("  {headline:<55} {date:<17} {paras} paras, {comments} comments");
    }

    println!("\nXML Schema for the aggregated structure:");
    for line in result.schema.to_xsd().to_string_with(2).lines().take(20) {
        println!("  {line}");
    }
}
