//! Data integration over a news site, feed-style: rules are built over
//! a working sample, then the whole site is extracted **as a stream** —
//! NDJSON records to stdout via `JsonLinesSink` (one page per line, the
//! shape a feed consumer or log shipper tails), with the parallel
//! driver's bounded sequencer keeping page order deterministic. The
//! same drive also runs a `CountingSink` dry run and a streamed-XML
//! digest, showing that one extraction API feeds any output.
//!
//! Run with: `cargo run --example news_digest`
//! Pipe the records: `cargo run --example news_digest | grep '"type": "page"'`

use retroweb::retrozilla::{
    build_rules, extract_cluster_parallel_to, working_sample, ClusterRules, CountingSink,
    JsonLinesSink, ScenarioConfig, SimulatedUser, StructureNode, XmlWriterSink,
};
use retroweb::sitegen::{news, NewsSiteSpec};
use retroweb::xml::parse_xml;
use std::io::Write;

fn main() {
    let spec = NewsSiteSpec { n_pages: 14, seed: 19, ..Default::default() };
    let site = news::generate(&spec);
    let sample = working_sample(&site, 9);

    let components = ["headline", "author", "date", "paragraph", "commenter", "comment"];
    let mut user = SimulatedUser::new();
    let reports = build_rules(&components, &sample, &mut user, &ScenarioConfig::default());

    eprintln!("Rules over the ledger-articles cluster:");
    let mut cluster = ClusterRules::new("ledger-articles", "article");
    for r in reports {
        assert!(r.ok, "{}: {:?}\n{}", r.component, r.strategies, r.final_table.render());
        eprintln!(
            "  {:<10} {:<9} {:<13} {:<5}  {}",
            r.component,
            r.rule.optionality.to_string(),
            r.rule.multiplicity.to_string(),
            r.rule.format.to_string(),
            if r.strategies.is_empty() { "-".to_string() } else { r.strategies.join("; ") }
        );
        cluster.rules.push(r.rule);
    }

    // A-posteriori aggregation (§4): byline facts group under `byline`,
    // reader feedback under `reader-feedback`.
    cluster.structure = Some(vec![
        StructureNode::Component("headline".into()),
        StructureNode::Group {
            name: "byline".into(),
            children: vec![
                StructureNode::Component("author".into()),
                StructureNode::Component("date".into()),
            ],
        },
        StructureNode::Component("paragraph".into()),
        StructureNode::Group {
            name: "reader-feedback".into(),
            children: vec![
                StructureNode::Component("commenter".into()),
                StructureNode::Component("comment".into()),
            ],
        },
    ]);

    let pages: Vec<(String, String)> =
        site.pages.iter().map(|p| (p.url.clone(), p.html.clone())).collect();

    // Dry run first: a CountingSink drive tells us what the feed will
    // carry without producing a byte of output.
    let mut count = CountingSink::new();
    extract_cluster_parallel_to(&cluster, &pages, 4, &mut count).expect("counting never fails");
    eprintln!(
        "\nDry run: {} pages, {} values, {} failures — streaming the feed:\n",
        count.pages, count.values, count.failures
    );
    assert_eq!(count.failures, 0);

    // The feed itself: NDJSON records streamed to stdout as each page
    // completes. `{"type": "page", "uri": …, "values": …}` per page,
    // one summary line last — pipe-friendly, O(threads) memory however
    // large the site is.
    let stdout = std::io::stdout();
    let mut sink = JsonLinesSink::new(stdout.lock());
    let stats = extract_cluster_parallel_to(&cluster, &pages, 4, &mut sink).expect("stdout open");
    let ndjson_bytes = sink.bytes_written();
    assert_eq!(stats.pages, pages.len());

    // The same drive can still produce the paper's §4 XML document —
    // streamed through XmlWriterSink, consumed here by the strict XML
    // reader acting as the §3.5 "external agent".
    let mut xml_sink = XmlWriterSink::new(Vec::new());
    extract_cluster_parallel_to(&cluster, &pages, 4, &mut xml_sink).expect("vec sink");
    let xml_text = String::from_utf8(xml_sink.into_inner()).expect("extraction output is UTF-8");
    let root = parse_xml(&xml_text).expect("extraction output is well-formed");

    let mut err = std::io::stderr().lock();
    writeln!(
        err,
        "\nStreamed {} articles: {} bytes of NDJSON, {} bytes of XML.",
        pages.len(),
        ndjson_bytes,
        xml_text.len()
    )
    .unwrap();
    writeln!(err, "\nDigest (headline / date / #paragraphs / #comments):").unwrap();
    for article in root.children_named("article").take(6) {
        let headline = article.child("headline").map(|e| e.text_content()).unwrap_or_default();
        let date = article
            .child("byline")
            .and_then(|b| b.child("date"))
            .map(|e| e.text_content())
            .unwrap_or_default();
        let paras = article.children_named("paragraph").count();
        let comments = article
            .child("reader-feedback")
            .map(|f| f.children_named("comment").count())
            .unwrap_or(0);
        writeln!(err, "  {headline:<55} {date:<17} {paras} paras, {comments} comments").unwrap();
    }
}
