//! Information monitoring (§1: "the monitoring of Web data such as
//! concurrent prices") plus the §7 failure-detection/repair loop.
//!
//! Scenario: build a price rule over today's catalog, watch prices across
//! two crawls, then survive a site redesign that breaks the rule.
//!
//! Run with: `cargo run --example price_monitor`

use retroweb::retrozilla::User;
use retroweb::retrozilla::{
    build_rules, check_rule, detect_failures, repair_rules, working_sample, ClusterRules,
    ScenarioConfig, SimulatedUser,
};
use retroweb::sitegen::{drift_products, products, Drift, ProductSiteSpec};

fn main() {
    // Crawl 1: the catalog today.
    let spec = ProductSiteSpec { n_pages: 12, seed: 77, ..Default::default() };
    let site_v1 = products::generate(&spec);
    let sample_v1 = working_sample(&site_v1, 8);

    let mut user = SimulatedUser::new();
    let components = ["name", "price", "sku"];
    let reports = build_rules(&components, &sample_v1, &mut user, &ScenarioConfig::default());
    let mut cluster = ClusterRules::new("shop-products", "product");
    println!("Built rules over {} sample pages:", sample_v1.len());
    for r in reports {
        assert!(r.ok, "{} failed: {:?}", r.component, r.strategies);
        println!("  {:<6} location: {}", r.component, r.rule.location_display());
        cluster.rules.push(r.rule);
    }

    // Crawl 2: same structure, new prices (price_factor drift).
    let spec_v2 = ProductSiteSpec { price_factor: 1.08, ..spec.clone() };
    let site_v2 = products::generate(&spec_v2);
    println!("\nPrice monitoring across two crawls:");
    let price_rule = cluster.rule("price").unwrap();
    let name_rule = cluster.rule("name").unwrap();
    let mut changes = 0;
    for (p1, p2) in site_v1.pages.iter().zip(&site_v2.pages).take(6) {
        let d1 = retroweb::html::parse(&p1.html);
        let d2 = retroweb::html::parse(&p2.html);
        let name = name_rule.extract_values(&d1).unwrap().pop().unwrap_or_default();
        let old = price_rule.extract_values(&d1).unwrap().pop().unwrap_or_default();
        let new = price_rule.extract_values(&d2).unwrap().pop().unwrap_or_default();
        if old != new {
            changes += 1;
            println!("  {name:<24} {old:>9} -> {new:>9}");
        }
    }
    assert!(changes > 0, "price drift should be visible");

    // Crawl 3: the shop redesigns — the price div gains a wrapper span,
    // breaking the positional rule. §7: detect, then repair
    // semi-automatically from negative examples.
    let spec_v3 = drift_products(&spec, Drift::Redesign);
    let site_v3 = products::generate(&spec_v3);
    let sample_v3 = working_sample(&site_v3, 8);

    let failing_before: Vec<String> = cluster
        .rules
        .iter()
        .filter(|r| !check_rule(r, &sample_v3).all_correct())
        .map(|r| r.name.as_str().to_string())
        .collect();
    let auto_detected = detect_failures(&cluster, &sample_v3);
    println!("\nAfter site redesign:");
    println!("  rules now failing     : {failing_before:?}");
    println!(
        "  auto-detected failures: {} ({} mandatory-missing)",
        auto_detected.len(),
        auto_detected
            .iter()
            .filter(|f| matches!(f.kind, retroweb::retrozilla::FailureKind::MandatoryMissing))
            .count()
    );

    let mut repair_user = SimulatedUser::new();
    let reports =
        repair_rules(&mut cluster, &sample_v3, &mut repair_user, &ScenarioConfig::default());
    println!("  repair reports:");
    for r in &reports {
        println!("    {:<6} {:?} ({} iterations)", r.component, r.method, r.iterations);
    }
    for rule in &cluster.rules {
        let table = check_rule(rule, &sample_v3);
        assert!(table.all_correct(), "{} unrepaired:\n{}", rule.name, table.render());
    }
    let stats = repair_user.stats();
    println!(
        "  repair effort: {} interactions (vs {} to build from scratch)",
        stats.total(),
        user.stats().total()
    );
    println!("\nAll rules green on the redesigned site.");
}
