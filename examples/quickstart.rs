//! Quickstart: the paper's worked example end to end.
//!
//! Builds a mapping rule for the `runtime` component over the four-page
//! imdb-movies working sample from the paper (§2.3, §3, Tables 1–3),
//! then extracts the cluster to XML (Figure 5) and an XML Schema.
//!
//! Run with: `cargo run --example quickstart`

use retroweb::retrozilla::User;
use retroweb::retrozilla::{
    build_rule, extract_cluster_html, sample_from_pages, ClusterRules, ScenarioConfig,
    SimulatedUser,
};
use retroweb::sitegen::paper::paper_working_sample;

fn main() {
    // 1. The working sample (§3.1): four pages of the imdb-movies
    //    cluster, with the structural discrepancies of Figure 4.
    let pages = paper_working_sample();
    let sample = sample_from_pages(pages.clone());
    println!("Working sample: {} pages of the imdb-movies cluster\n", sample.len());

    // 2. Semi-automated rule building (§3.2–§3.5). The SimulatedUser
    //    plays the human: it points at values, names components and
    //    inspects check tables.
    let mut user = SimulatedUser::new();
    let report = build_rule("runtime", &sample, &mut user, &ScenarioConfig::default())
        .expect("runtime exists in the sample");

    println!("--- Candidate rule checking (paper Table 1) ---");
    print!("{}", report.initial_table.render());
    println!("\n--- Applied refinements (§3.4) ---");
    for s in &report.strategies {
        println!("  * {s}");
    }
    println!("\n--- Rule checking after refinement (paper Table 3) ---");
    print!("{}", report.final_table.render());
    println!("\n--- Recorded mapping rule (§2.3 display form) ---");
    println!("{}\n", report.rule.display());
    let stats = user.stats();
    println!(
        "User effort: {} selections, {} interpretations, {} table-row validations\n",
        stats.selections, stats.interpretations, stats.validations
    );

    // 3. XML extraction (§4, Figure 5).
    let mut cluster = ClusterRules::new("imdb-movies", "imdb-movie");
    cluster.rules.push(report.rule);
    let page_sources: Vec<(String, String)> = pages
        .iter()
        .map(|p| (format!("http://imdb.com{}", p.url.trim_start_matches('.')), p.html.clone()))
        .collect();
    let result = extract_cluster_html(&cluster, &page_sources);

    println!("--- Generated XML document (paper Figure 5) ---");
    print!("{}", result.xml.to_string_with(0));
    println!("\n--- Generated XML Schema ---");
    print!("{}", result.schema.to_xsd().to_string_with(2));
    assert!(result.failures.is_empty());
}
