//! Serving tour: start the extraction server in-process, then drive the
//! full operator loop over loopback HTTP — record rules, extract a
//! batch, detect drift, hot-reload the rules, read the metrics.
//!
//! Run with: `cargo run --example service_roundtrip`

use retroweb::retrozilla::RuleRepository;
use retroweb::service::testdata::{
    demo_cluster_json, demo_pages, drifted_page, pages_json, updated_cluster_json, DEMO_CLUSTER,
};
use retroweb::service::{Client, Server, ServerConfig};

fn main() {
    // 1. An empty repository behind the server — rules arrive over HTTP.
    let server = Server::bind(RuleRepository::new(), ServerConfig::default()).expect("bind");
    let handle = server.start().expect("start");
    let addr = handle.addr();
    println!("serving on http://{addr}\n");
    let mut client = Client::connect(addr).expect("connect");

    // 2. Record the cluster (what `curl -X PUT` would do).
    let resp = client
        .request("PUT", &format!("/clusters/{DEMO_CLUSTER}"), &[], demo_cluster_json().as_bytes())
        .expect("PUT rules");
    println!("PUT /clusters/{DEMO_CLUSTER} -> {} {}", resp.status, resp.body_utf8());

    // 3. Batch-extract 4 pages.
    let pages = demo_pages(4);
    let resp = client
        .request(
            "POST",
            &format!("/extract/{DEMO_CLUSTER}/batch?threads=2"),
            &[],
            pages_json(&pages).as_bytes(),
        )
        .expect("batch extract");
    println!(
        "\nPOST /extract/{DEMO_CLUSTER}/batch -> {} ({} pages, {} failures)\n{}",
        resp.status,
        resp.header("x-retroweb-pages").unwrap_or("?"),
        resp.header("x-retroweb-failures").unwrap_or("?"),
        resp.body_utf8()
    );

    // 4. The site redesigns: the drift check flags the failing rule.
    let resp = client
        .request(
            "POST",
            &format!("/check/{DEMO_CLUSTER}"),
            &[],
            pages_json(&[drifted_page(0)]).as_bytes(),
        )
        .expect("check");
    println!("POST /check/{DEMO_CLUSTER} -> {}\n{}", resp.status, resp.body_utf8());

    // 5. Hot-reload repaired rules; the next extraction uses them.
    let resp = client
        .request(
            "PUT",
            &format!("/clusters/{DEMO_CLUSTER}"),
            &[],
            updated_cluster_json().as_bytes(),
        )
        .expect("PUT reload");
    println!("\nPUT /clusters/{DEMO_CLUSTER} (reload) -> {} {}", resp.status, resp.body_utf8());
    let resp = client
        .request(
            "POST",
            &format!("/extract/{DEMO_CLUSTER}/batch"),
            &[],
            pages_json(&demo_pages(1)).as_bytes(),
        )
        .expect("post-reload extract");
    println!("\npost-reload extraction:\n{}", resp.body_utf8());

    // 6. Live metrics.
    let resp = client.request("GET", "/metrics", &[], b"").expect("metrics");
    println!("GET /metrics ->\n{}", resp.body_utf8());

    handle.shutdown();
    println!("server drained and stopped");
}
