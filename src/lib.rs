//! # retroweb — the Retrozilla-rs reproduction, in one crate
//!
//! Facade over the workspace crates that reproduce *Semi-Automated
//! Extraction of Targeted Data from Web Pages* (Estiévenart, Meurisse,
//! Hainaut, Thiran — IEEE ICDE 2006 Workshops):
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`html`] | `retroweb-html` | error-tolerant HTML parser + mutable arena DOM |
//! | [`xpath`] | `retroweb-xpath` | XPath 1.0 engine, precise-path builder, generalisation ops |
//! | [`xml`] | `retroweb-xml` | XML output, XML Schema generation, reader |
//! | [`cluster`] | `retroweb-cluster` | page clustering (Figure 1 step 1) |
//! | [`sitegen`] | `retroweb-sitegen` | synthetic corpora with ground truth |
//! | [`baselines`] | `retroweb-baselines` | RoadRunner-style + LR wrapper baselines |
//! | [`retrozilla`] | `retrozilla` | the paper's contribution: mapping rules end to end |
//! | [`json`] | `retroweb-json` | dependency-free JSON for persistence/reports |
//! | [`netpoll`] | `retroweb-netpoll` | std-only `poll(2)` readiness event loop |
//! | [`service`] | `retroweb-service` | multi-threaded HTTP extraction server |
//!
//! See `examples/quickstart.rs` for the five-minute tour and DESIGN.md
//! for the per-experiment index.
//!
//! ## Serving
//!
//! The §3.5 rule repository is built to be used by "external agents,
//! for instance the XML extractor" — [`service`] is that agent surface
//! in production shape. `retrozilla-serve` (in `crates/service`) hosts
//! a [`retrozilla::ShardedRepository`] (through the
//! [`retrozilla::ClusterStore`] storage trait: lock-free snapshot
//! reads, per-shard copy-on-write writers, optionally one write-ahead
//! log per shard) behind a std-only HTTP/1.1 server:
//! a fixed-size worker pool with a bounded queue serves
//! `POST /extract/{cluster}` and `POST /extract/{cluster}/batch` —
//! the batch path *streams*: extraction drives a
//! [`retrozilla::ExtractionSink`] straight into the chunked response
//! (first bytes after the first page, memory O(threads)), with the
//! concatenated XML byte-identical to a direct
//! [`retrozilla::extract_cluster`] call and
//! `Accept: application/x-ndjson` selecting NDJSON records instead
//! (see `examples/news_digest.rs` for the same sink API used as a
//! library). `POST /check/{cluster}` runs
//! the §7 drift detectors, and `GET`/`PUT /clusters/{name}` give rule
//! CRUD where a `PUT` re-records the cluster — invalidating the
//! compiled-rule cache and thereby hot-reloading rules with zero
//! downtime. `GET /healthz` and `GET /metrics` expose liveness,
//! counters and latency histograms. `PUT`/`DELETE` persist through the
//! repository's crash-safe (write-temp-then-rename) save. See
//! `crates/service/README.md` for a curl walkthrough and
//! `examples/service_roundtrip.rs` for the in-process tour.

pub use retroweb_baselines as baselines;
pub use retroweb_cluster as cluster;
pub use retroweb_html as html;
pub use retroweb_json as json;
pub use retroweb_netpoll as netpoll;
pub use retroweb_service as service;
pub use retroweb_sitegen as sitegen;
pub use retroweb_xml as xml;
pub use retroweb_xpath as xpath;
pub use retrozilla;

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        let doc = crate::html::parse("<body><p>x</p></body>");
        assert!(doc.body().is_some());
        assert!(crate::xpath::parse("//P/text()").is_ok());
    }
}
