//! # retroweb — the Retrozilla-rs reproduction, in one crate
//!
//! Facade over the workspace crates that reproduce *Semi-Automated
//! Extraction of Targeted Data from Web Pages* (Estiévenart, Meurisse,
//! Hainaut, Thiran — IEEE ICDE 2006 Workshops):
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`html`] | `retroweb-html` | error-tolerant HTML parser + mutable arena DOM |
//! | [`xpath`] | `retroweb-xpath` | XPath 1.0 engine, precise-path builder, generalisation ops |
//! | [`xml`] | `retroweb-xml` | XML output, XML Schema generation, reader |
//! | [`cluster`] | `retroweb-cluster` | page clustering (Figure 1 step 1) |
//! | [`sitegen`] | `retroweb-sitegen` | synthetic corpora with ground truth |
//! | [`baselines`] | `retroweb-baselines` | RoadRunner-style + LR wrapper baselines |
//! | [`retrozilla`] | `retrozilla` | the paper's contribution: mapping rules end to end |
//! | [`json`] | `retroweb-json` | dependency-free JSON for persistence/reports |
//!
//! See `examples/quickstart.rs` for the five-minute tour and DESIGN.md
//! for the per-experiment index.

pub use retroweb_baselines as baselines;
pub use retroweb_cluster as cluster;
pub use retroweb_html as html;
pub use retroweb_json as json;
pub use retroweb_sitegen as sitegen;
pub use retroweb_xml as xml;
pub use retroweb_xpath as xpath;
pub use retrozilla;

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        let doc = crate::html::parse("<body><p>x</p></body>");
        assert!(doc.body().is_some());
        assert!(crate::xpath::parse("//P/text()").is_ok());
    }
}
