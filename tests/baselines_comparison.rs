//! Integration: the E8 comparison invariants hold at test scale — the
//! paper's §6 positioning of Retrozilla against automatic induction.

use retroweb::baselines::{Extractor, LrWrapper, RoadRunnerWrapper};
use retroweb::html::parse;
use retroweb::retrozilla::{
    build_rules, page_counts, working_sample, Counts, ScenarioConfig, SimulatedUser,
};
use retroweb::sitegen::{movie, MovieSiteSpec};
use std::collections::BTreeMap;

const COMPONENTS: &[&str] = &["title", "runtime", "country"];

fn movie_spec() -> MovieSiteSpec {
    MovieSiteSpec {
        n_pages: 20,
        seed: 2024,
        p_aka: 0.4,
        p_missing_runtime: 0.0,
        p_missing_language: 0.3,
        ..Default::default()
    }
}

#[test]
fn retrozilla_targets_only_what_was_asked() {
    let site = movie::generate(&movie_spec());
    let sample = working_sample(&site, 6);
    let mut user = SimulatedUser::new();
    let reports = build_rules(COMPONENTS, &sample, &mut user, &ScenarioConfig::default());
    assert_eq!(reports.len(), COMPONENTS.len());
    // Every page yields exactly the targeted components, nothing else.
    for page in &site.pages[6..] {
        let doc = parse(&page.html);
        for r in &reports {
            let got = r.rule.extract_values(&doc).unwrap();
            let want: Vec<String> =
                page.expected(&r.component).iter().map(|v| v.to_string()).collect();
            assert_eq!(got, want, "{} on {}", r.component, page.url);
        }
    }
}

#[test]
fn roadrunner_extracts_unwanted_chunks_too() {
    let site = movie::generate(&movie_spec());
    let train: Vec<&str> = site.pages[..6].iter().map(|p| p.html.as_str()).collect();
    let wrapper = RoadRunnerWrapper::induce(&train).unwrap();
    // The automatic wrapper produces strictly more value slots than the
    // three targeted components — the §6 flexibility criticism.
    let fields = Extractor::extract(&wrapper, &site.pages[0].html);
    let total_values: usize = fields.values().map(Vec::len).sum();
    assert!(
        total_values > COMPONENTS.len(),
        "expected untargeted over-extraction, got {total_values} values"
    );
}

#[test]
fn lr_wrapper_handles_stable_context_but_not_position_shifts_alone() {
    let site = movie::generate(&movie_spec());
    // Learn from two pages with labels as context: works.
    let examples: Vec<(&str, &[String])> =
        site.pages[..4].iter().map(|p| (p.html.as_str(), p.expected("runtime"))).collect();
    let w = LrWrapper::induce("runtime", &examples).unwrap();
    let mut counts = Counts::default();
    for page in &site.pages[4..] {
        let got = BTreeMap::from([("runtime".to_string(), w.extract(&page.html))]);
        counts.add(page_counts(&got, &page.truth, &["runtime"], false));
    }
    assert!(counts.prf().f1 > 0.9, "{:?}", counts.prf());
}
