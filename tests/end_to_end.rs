//! Cross-crate integration: the full Figure 1 pipeline on generated
//! corpora, repository round trips through extraction, and parallel vs
//! sequential equivalence.

use retroweb::cluster::{cluster_pages, purity, signature, ClusterParams, PageSignature};
use retroweb::html::parse;
use retroweb::retrozilla::{
    build_rules, extract_cluster_html, extract_cluster_parallel, working_sample, ClusterRules,
    RuleRepository, ScenarioConfig, SimulatedUser, StructureNode,
};
use retroweb::sitegen::{mixed_corpus, movie, news, MovieSiteSpec, NewsSiteSpec, MOVIE_COMPONENTS};

#[test]
fn pipeline_clusters_then_extracts() {
    let corpus = mixed_corpus(42, 6);
    let sigs: Vec<PageSignature> =
        corpus.iter().map(|p| signature(&p.url, &parse(&p.html))).collect();
    let clusters = cluster_pages(&sigs, &ClusterParams::default());
    let labels: Vec<&str> = corpus.iter().map(|p| p.cluster.as_str()).collect();
    let members: Vec<Vec<usize>> = clusters.iter().map(|c| c.members.clone()).collect();
    assert!(purity(&members, &labels) >= 0.95);
    assert_eq!(clusters.len(), 3);
}

#[test]
fn movie_rules_survive_repository_round_trip_and_extract_identically() {
    let spec = MovieSiteSpec { n_pages: 12, seed: 77, ..Default::default() };
    let site = movie::generate(&spec);
    let sample = working_sample(&site, 8);
    let mut user = SimulatedUser::new();
    let reports = build_rules(MOVIE_COMPONENTS, &sample, &mut user, &ScenarioConfig::default());
    let mut cluster = ClusterRules::new("imdb-movies", "imdb-movie");
    for r in reports {
        assert!(r.ok, "{}", r.component);
        cluster.rules.push(r.rule);
    }
    cluster.structure = Some(vec![
        StructureNode::Component("title".into()),
        StructureNode::Group {
            name: "facts".into(),
            children: vec![
                StructureNode::Component("runtime".into()),
                StructureNode::Component("country".into()),
            ],
        },
        StructureNode::Component("genre".into()),
        StructureNode::Component("actor".into()),
        StructureNode::Component("director".into()),
        StructureNode::Component("aka".into()),
        StructureNode::Component("language".into()),
        StructureNode::Component("rating".into()),
    ]);

    // JSON round trip through the repository.
    let repo = RuleRepository::new();
    repo.record(cluster.clone());
    let text = repo.to_json().to_string_pretty();
    let restored = RuleRepository::from_json(&retroweb::json::parse(&text).unwrap()).unwrap();
    let restored_cluster = restored.get("imdb-movies").unwrap();
    assert_eq!(restored_cluster, cluster);

    // Both rule sets extract identical XML.
    let pages: Vec<(String, String)> =
        site.pages.iter().map(|p| (p.url.clone(), p.html.clone())).collect();
    let a = extract_cluster_html(&cluster, &pages).xml.to_string_with(2);
    let b = extract_cluster_html(&restored_cluster, &pages).xml.to_string_with(2);
    assert_eq!(a, b);
}

#[test]
fn parallel_extraction_equals_sequential_on_news() {
    let spec = NewsSiteSpec { n_pages: 16, seed: 5, ..Default::default() };
    let site = news::generate(&spec);
    let sample = working_sample(&site, 8);
    let mut user = SimulatedUser::new();
    let reports = build_rules(
        &["headline", "date", "paragraph", "comment"],
        &sample,
        &mut user,
        &ScenarioConfig::default(),
    );
    let mut cluster = ClusterRules::new("ledger-articles", "article");
    for r in reports {
        assert!(r.ok, "{}", r.component);
        cluster.rules.push(r.rule);
    }
    let pages: Vec<(String, String)> =
        site.pages.iter().map(|p| (p.url.clone(), p.html.clone())).collect();
    let seq = extract_cluster_html(&cluster, &pages);
    for threads in [1, 2, 3, 8] {
        let par = extract_cluster_parallel(&cluster, &pages, threads);
        assert_eq!(seq.xml.to_string_with(0), par.xml.to_string_with(0), "threads={threads}");
        assert_eq!(seq.failures, par.failures);
    }
}

#[test]
fn extraction_output_validates_against_ground_truth() {
    let spec =
        MovieSiteSpec { n_pages: 25, seed: 123, p_mixed_runtime: 0.25, ..Default::default() };
    let site = movie::generate(&spec);
    let sample = working_sample(&site, 10);
    let mut user = SimulatedUser::new();
    let reports = build_rules(MOVIE_COMPONENTS, &sample, &mut user, &ScenarioConfig::default());
    let rules: Vec<retroweb::retrozilla::MappingRule> =
        reports.into_iter().map(|r| r.rule).collect();
    let mut counts = retroweb::retrozilla::Counts::default();
    for page in &site.pages {
        let doc = parse(&page.html);
        let mut got = std::collections::BTreeMap::new();
        for rule in &rules {
            let values = rule.extract_values(&doc).unwrap();
            if !values.is_empty() {
                got.insert(rule.name.as_str().to_string(), values);
            }
        }
        counts.add(retroweb::retrozilla::page_counts(&got, &page.truth, MOVIE_COMPONENTS, false));
    }
    let prf = counts.prf();
    assert!(prf.f1 > 0.97, "{prf:?}");
}
