//! Integration tests pinning the reproduction to the paper's own worked
//! examples: the §2.3 rule, Table 1, Table 2, Table 3, Figure 4 and
//! Figure 5.

use retroweb::html::parse;
use retroweb::retrozilla::{
    build_rule, check_rule, extract_cluster_html, sample_from_pages, ClusterRules, ComponentName,
    Format, MappingRule, Outcome, ScenarioConfig, SimulatedUser,
};
use retroweb::sitegen::paper::{figure4_pages, paper_working_sample, AKA_VALUE, TABLE3_RUNTIMES};
use retroweb::xpath::{parse as xparse, parse_lenient, Engine};

#[test]
fn section_2_3_rule_display_form() {
    let rule = MappingRule::candidate(
        ComponentName::new("runtime").unwrap(),
        xparse("BODY[1]/DIV[2]/TABLE[3]/TR[1]/TD[3]/TABLE[1]/TR[6]/TD[1]/text()[1]").unwrap(),
        Format::Text,
    );
    let display = rule.display();
    // The paper's §2.3 sample rule, property for property.
    assert!(display.contains("name         : runtime"));
    assert!(display.contains("optionality  : mandatory"));
    assert!(display.contains("multiplicity : single-valued"));
    assert!(display.contains("format       : text"));
    assert!(display.contains(
        "location     : BODY[1]/DIV[2]/TABLE[3]/TR[1]/TD[3]/TABLE[1]/TR[6]/TD[1]/text()[1]"
    ));
}

#[test]
fn table1_outcomes_match_paper() {
    let sample = sample_from_pages(paper_working_sample());
    let candidate = MappingRule::candidate(
        ComponentName::new("runtime").unwrap(),
        xparse("/HTML[1]/BODY[1]/TABLE[1]/TR[6]/TD[1]/text()[1]").unwrap(),
        Format::Text,
    );
    let table = check_rule(&candidate, &sample);
    let outcomes: Vec<&Outcome> = table.rows.iter().map(|r| &r.outcome).collect();
    assert_eq!(
        outcomes,
        vec![&Outcome::Correct, &Outcome::Correct, &Outcome::Wrong, &Outcome::Void]
    );
    assert_eq!(table.rows[2].display_value(), AKA_VALUE);
}

#[test]
fn table2_row_b_lenient_parse_and_eval() {
    let (_, right) = figure4_pages();
    let doc = parse(&right.html);
    let expr = parse_lenient(
        "BODY//TR[6]/TD[1]/text()[ancestor-or-self/preceding-sibling//text()[contains(\"Runtime:\")]]",
    )
    .unwrap();
    let html_el = doc.html_element().unwrap();
    let hits = Engine::new(&doc).select(&expr, html_el).unwrap();
    assert!(!hits.is_empty());
    // The first match (document order) is the runtime value.
    assert_eq!(doc.text(hits[0]).unwrap().trim(), "104 min");
}

#[test]
fn full_scenario_reaches_table3() {
    let sample = sample_from_pages(paper_working_sample());
    let mut user = SimulatedUser::new();
    let report = build_rule("runtime", &sample, &mut user, &ScenarioConfig::default()).unwrap();
    assert!(report.ok);
    let values: Vec<String> = report.final_table.rows.iter().map(|r| r.display_value()).collect();
    assert_eq!(values, TABLE3_RUNTIMES.to_vec());
    // Refinement used contextual information, as in Figure 4.
    assert!(report.strategies.iter().any(|s| s.contains("Runtime:")));
}

#[test]
fn figure5_xml_document_shape() {
    let pages = paper_working_sample();
    let sample = sample_from_pages(pages.clone());
    let mut user = SimulatedUser::new();
    let report = build_rule("runtime", &sample, &mut user, &ScenarioConfig::default()).unwrap();
    let mut cluster = ClusterRules::new("imdb-movies", "imdb-movie");
    cluster.rules.push(report.rule);
    let sources: Vec<(String, String)> = pages
        .iter()
        .map(|p| (format!("http://imdb.com{}", p.url.trim_start_matches('.')), p.html.clone()))
        .collect();
    let result = extract_cluster_html(&cluster, &sources);
    let xml = result.xml.to_string_with(0);
    assert!(xml.starts_with("<?xml version=\"1.0\" encoding=\"ISO-8859-1\"?>\n<imdb-movies>\n"));
    for (uri, runtime) in [
        ("tt0095159", "108 min"),
        ("tt0071853", "91 min"),
        ("tt0074103", "104 min"),
        ("tt0102059", "84 min"),
    ] {
        assert!(xml.contains(&format!("<imdb-movie uri=\"http://imdb.com/title/{uri}/\">")));
        assert!(xml.contains(&format!("<runtime>{runtime}</runtime>")));
    }
    // The XML is consumable by an external agent via the strict reader.
    let root = retroweb::xml::parse_xml(&xml).unwrap();
    assert_eq!(root.children_named("imdb-movie").count(), 4);
}
