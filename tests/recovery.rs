//! Integration: §7 failure detection + semi-automated repair across all
//! drift kinds, and monitoring semantics (values change, structure
//! doesn't → no false positives).

use retroweb::retrozilla::{
    build_rules, check_rule, detect_failures, repair_rules, working_sample, ClusterRules,
    FailureKind, ScenarioConfig, SimulatedUser,
};
use retroweb::sitegen::{
    drift_movie, drift_products, movie, products, Drift, MovieSiteSpec, ProductSiteSpec,
};

fn build_movie_cluster(spec: &MovieSiteSpec, components: &[&str]) -> ClusterRules {
    let site = movie::generate(spec);
    let sample = working_sample(&site, 8);
    let mut user = SimulatedUser::new();
    let reports = build_rules(components, &sample, &mut user, &ScenarioConfig::default());
    let mut cluster = ClusterRules::new("imdb-movies", "imdb-movie");
    for r in reports {
        assert!(r.ok, "{}: {:?}", r.component, r.strategies);
        cluster.rules.push(r.rule);
    }
    cluster
}

#[test]
fn value_only_drift_triggers_no_failures() {
    // Prices change, structure doesn't: monitors must not page anyone.
    let spec = ProductSiteSpec { n_pages: 10, seed: 31, p_availability: 1.0, ..Default::default() };
    let site = products::generate(&spec);
    let sample = working_sample(&site, 6);
    let mut user = SimulatedUser::new();
    let reports = build_rules(&["name", "price"], &sample, &mut user, &ScenarioConfig::default());
    let mut cluster = ClusterRules::new("shop-products", "product");
    for r in reports {
        cluster.rules.push(r.rule);
    }
    let raised = products::generate(&ProductSiteSpec { price_factor: 1.2, ..spec });
    let drifted_sample = working_sample(&raised, 6);
    assert!(detect_failures(&cluster, &drifted_sample).is_empty());
}

#[test]
fn every_drift_kind_is_repairable() {
    for drift in [Drift::Relabel, Drift::Reposition, Drift::Redesign] {
        let spec = MovieSiteSpec {
            n_pages: 16,
            seed: 91,
            p_aka: 0.25,
            p_missing_runtime: 0.0,
            ..Default::default()
        };
        let mut cluster = build_movie_cluster(&spec, &["title", "runtime", "country"]);
        let drifted = movie::generate(&drift_movie(&spec, drift));
        let sample = working_sample(&drifted, 8);
        let mut user = SimulatedUser::new();
        repair_rules(&mut cluster, &sample, &mut user, &ScenarioConfig::default());
        for rule in &cluster.rules {
            let table = check_rule(rule, &sample);
            assert!(table.all_correct(), "{drift:?}/{}:\n{}", rule.name, table.render());
        }
    }
}

#[test]
fn relabel_drift_fires_mandatory_missing() {
    let spec =
        MovieSiteSpec { n_pages: 12, seed: 92, p_missing_runtime: 0.0, ..Default::default() };
    let cluster = build_movie_cluster(&spec, &["runtime"]);
    let drifted = movie::generate(&drift_movie(&spec, Drift::Relabel));
    let sample = working_sample(&drifted, 8);
    let failures = detect_failures(&cluster, &sample);
    assert!(failures.iter().any(|f| f.kind == FailureKind::MandatoryMissing));
}

#[test]
fn product_redesign_detected_and_repaired() {
    let spec = ProductSiteSpec { n_pages: 12, seed: 93, ..Default::default() };
    let site = products::generate(&spec);
    let sample = working_sample(&site, 8);
    let mut user = SimulatedUser::new();
    let reports =
        build_rules(&["name", "price", "sku"], &sample, &mut user, &ScenarioConfig::default());
    let mut cluster = ClusterRules::new("shop-products", "product");
    for r in reports {
        assert!(r.ok);
        cluster.rules.push(r.rule);
    }
    let drifted = products::generate(&drift_products(&spec, Drift::Redesign));
    let drifted_sample = working_sample(&drifted, 8);
    let mut repair_user = SimulatedUser::new();
    repair_rules(&mut cluster, &drifted_sample, &mut repair_user, &ScenarioConfig::default());
    for rule in &cluster.rules {
        assert!(check_rule(rule, &drifted_sample).all_correct(), "{}", rule.name);
    }
}
