//! Integration: the §7 schema-guided workflow — a schema exported from
//! one site's rules guides rule building on a *different* site of the
//! same domain ("schema reusability and sharing … integrate data coming
//! from various Web sites").

use retroweb::retrozilla::schema_guided::{build_with_guide, Conformance, SchemaGuide};
use retroweb::retrozilla::{
    build_rules, extract::cluster_schema, working_sample, ClusterRules, ScenarioConfig,
    SimulatedUser,
};
use retroweb::sitegen::{movie, Layout, MovieSiteSpec};

#[test]
fn schema_from_site_a_guides_site_b() {
    // Site A: rows layout.
    let spec_a = MovieSiteSpec {
        n_pages: 10,
        seed: 610,
        layout: Layout::Rows,
        p_missing_runtime: 0.3,
        ..Default::default()
    };
    let site_a = movie::generate(&spec_a);
    let sample_a = working_sample(&site_a, 8);
    let mut user_a = SimulatedUser::new();
    let reports = build_rules(
        &["title", "runtime", "country", "genre"],
        &sample_a,
        &mut user_a,
        &ScenarioConfig::default(),
    );
    let mut cluster_a = ClusterRules::new("imdb-movies", "imdb-movie");
    for r in reports {
        assert!(r.ok);
        cluster_a.rules.push(r.rule);
    }

    // Export the XSD, re-parse it into a guide (the sharing step: only
    // the schema text crosses the site boundary).
    let xsd_text = cluster_schema(&cluster_a).to_xsd().to_string_with(2);
    let guide = SchemaGuide::from_xsd_text(&xsd_text).unwrap();
    assert_eq!(guide.cluster, "imdb-movies");
    assert_eq!(guide.components.len(), 4);

    // Site B: same domain, different template (flat layout, other seed).
    let spec_b = MovieSiteSpec {
        n_pages: 10,
        seed: 611,
        layout: Layout::Flat,
        p_missing_runtime: 0.3,
        ..Default::default()
    };
    let site_b = movie::generate(&spec_b);
    let sample_b = working_sample(&site_b, 8);
    let mut user_b = SimulatedUser::new();
    let results = build_with_guide(&guide, &sample_b, &mut user_b, &ScenarioConfig::default());
    assert_eq!(results.len(), 4);
    for r in &results {
        assert_eq!(r.conformance, Conformance::Conforms, "{}: {:?}", r.component, r.conformance);
        assert!(r.report.as_ref().unwrap().ok, "{}", r.component);
    }

    // The two rule sets produce schema-compatible output: same component
    // names extractable from both sites.
    let mut cluster_b = ClusterRules::new("imdb-movies", "imdb-movie");
    for r in results {
        cluster_b.rules.push(r.report.unwrap().rule);
    }
    let xsd_b = cluster_schema(&cluster_b).to_xsd().to_string_with(2);
    let guide_b = SchemaGuide::from_xsd_text(&xsd_b).unwrap();
    let names_a: Vec<&str> = guide.components.iter().map(|c| c.name.as_str()).collect();
    let names_b: Vec<&str> = guide_b.components.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(names_a, names_b);
}
