//! Facade-level end-to-end test: the whole record → serve → extract →
//! drift-check cycle through `retroweb::service`, driven the way an
//! operator would drive the shipped binary.

use retroweb::retrozilla::RuleRepository;
use retroweb::service::testdata;
use retroweb::service::{request_once, Client, Server, ServerConfig};

#[test]
fn record_serve_extract_check_roundtrip() {
    // Record a cluster through the public JSON shape, as PUT would.
    let repo = RuleRepository::new();
    repo.record(testdata::cluster_from(&testdata::demo_cluster_json()));

    let handle = Server::bind(repo, ServerConfig::default()).expect("bind").start().expect("start");
    let addr = handle.addr();

    let resp = request_once(addr, "GET", "/healthz", &[], b"").expect("healthz");
    assert_eq!(resp.status, 200);

    // Served single-page extraction matches the library call exactly.
    let rules = testdata::cluster_from(&testdata::demo_cluster_json());
    let (uri, html) = testdata::demo_page(2);
    let want = testdata::direct_extract_xml(&rules, &[(uri.clone(), html.clone())]);
    let mut client = Client::connect(addr).expect("connect");
    let resp = client
        .request(
            "POST",
            &format!("/extract/{}", testdata::DEMO_CLUSTER),
            &[("x-page-uri", uri.as_str())],
            html.as_bytes(),
        )
        .expect("extract");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body_utf8(), want);

    // Drift-check a redesigned page.
    let body = testdata::pages_json(&[testdata::drifted_page(3)]);
    let resp = client
        .request("POST", &format!("/check/{}", testdata::DEMO_CLUSTER), &[], body.as_bytes())
        .expect("check");
    let report = resp.body_json().expect("check report json");
    assert_eq!(report.get("drifted").and_then(|d| d.as_bool()), Some(true), "{report}");

    handle.shutdown();
}
