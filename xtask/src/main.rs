//! Repo automation tasks (`cargo run -p xtask -- <task>`).
//!
//! `sync-lint` — static source pass over the modules ported onto the
//! `retroweb_sync` facade. Those modules must stay on the facade so the
//! model checker (`crates/conc-check`, built with `--cfg conc_check`)
//! keeps seeing every synchronisation op; a direct `std::sync` /
//! `std::thread` use there is an instrumentation hole, invisible to the
//! checker. The pass also flags `Ordering::Relaxed` on any atomic not
//! annotated as a counter: `Relaxed` is only sound here for monotonic
//! stats counters that no control flow depends on, and the annotation
//! (`// sync-lint: counter`) makes that claim reviewable in place.
//!
//! Escapes:
//! - `#[cfg(test)]` (or any test-gated) modules are skipped — tests may
//!   use real std primitives for timing-based assertions.
//! - `// sync-lint: counter` on the offending line or the line above
//!   allows a `Relaxed` access (monotonic counter claim).
//! - `// sync-lint: allow(std)` on the offending line or the line above
//!   allows a direct std use (must say why next to it).
//!
//! `sync-lint --all` additionally audits every crate source file in the
//! repo and prints an advisory inventory of files still using raw
//! `std::sync`/`std::thread` outside the facade (exit code unaffected:
//! only ported-module violations fail the build).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Modules ported onto the `retroweb_sync` facade; the lint is a hard
/// gate for these (CI runs it). Extend this list when porting more.
const PORTED: &[&str] = &[
    "crates/core/src/store.rs",
    "crates/core/src/wal.rs",
    "crates/service/src/pool.rs",
    "crates/service/src/pipe.rs",
    "crates/netpoll/src/lib.rs",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("sync-lint") => sync_lint(args.iter().any(|a| a == "--all")),
        Some(other) => {
            eprintln!("xtask: unknown task `{other}` (try `sync-lint`)");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("xtask: no task given (try `sync-lint`)");
            ExitCode::FAILURE
        }
    }
}

fn repo_root() -> PathBuf {
    // xtask lives at <root>/xtask.
    Path::new(env!("CARGO_MANIFEST_DIR")).parent().expect("xtask has a parent dir").to_path_buf()
}

fn sync_lint(audit_all: bool) -> ExitCode {
    let root = repo_root();
    let mut violations = Vec::new();
    for rel in PORTED {
        let path = root.join(rel);
        let source = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(err) => {
                eprintln!("sync-lint: cannot read {rel}: {err}");
                return ExitCode::FAILURE;
            }
        };
        violations.extend(lint_file(rel, &source));
    }

    if audit_all {
        audit_repo(&root);
    }

    if violations.is_empty() {
        println!("sync-lint: {} ported module(s) clean", PORTED.len());
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!("sync-lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

/// Advisory inventory: every crate source file (outside the facade and
/// the ported set) still using raw std sync/thread primitives.
fn audit_repo(root: &Path) {
    let mut files = Vec::new();
    collect_rs(&root.join("crates"), &mut files);
    files.sort();
    let mut hits = 0usize;
    for path in files {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
        if PORTED.contains(&rel.as_str()) || rel.starts_with("crates/conc-check/") {
            continue;
        }
        let Ok(source) = std::fs::read_to_string(&path) else { continue };
        let mut uses = 0usize;
        for (line, _) in code_lines(&source) {
            if line.contains("std::sync") || line.contains("std::thread") {
                uses += 1;
            }
        }
        if uses > 0 {
            println!("audit: {rel}: {uses} raw std sync/thread use(s) (not yet on the facade)");
            hits += 1;
        }
    }
    if hits == 0 {
        println!("audit: no raw std sync/thread uses outside the ported modules");
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Yields `(line, 1-based number)` for non-test, non-comment source
/// lines. Test-gated modules are tracked by brace depth from the
/// `#[cfg(...test...)] mod` header to its closing brace.
fn code_lines(source: &str) -> Vec<(&str, usize)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut test_gate_pending = false;
    let mut test_mod_depth: Option<i32> = None;
    for (idx, raw) in source.lines().enumerate() {
        let line = strip_comment(raw);
        let trimmed = line.trim();
        if test_mod_depth.is_none() {
            if trimmed.starts_with("#[cfg(") && trimmed.contains("test") {
                test_gate_pending = true;
            } else if test_gate_pending
                && (trimmed.starts_with("mod ") || trimmed.starts_with("pub mod "))
            {
                test_mod_depth = Some(depth);
                test_gate_pending = false;
            } else if !trimmed.is_empty() && !trimmed.starts_with("#[") {
                test_gate_pending = false;
            }
        }
        let in_test = test_mod_depth.is_some();
        depth += braces(line);
        if test_mod_depth.is_some_and(|entry| depth <= entry) {
            test_mod_depth = None;
        }
        if !in_test && !trimmed.is_empty() {
            out.push((line, idx + 1));
        }
    }
    out
}

/// Net brace delta of a line, ignoring braces inside string literals
/// (good enough for rustfmt-formatted source).
fn braces(line: &str) -> i32 {
    let mut delta = 0i32;
    let mut in_str = false;
    let mut prev = '\0';
    for c in line.chars() {
        match c {
            '"' if prev != '\\' => in_str = !in_str,
            '{' if !in_str => delta += 1,
            '}' if !in_str => delta -= 1,
            _ => {}
        }
        prev = if prev == '\\' && c == '\\' { '\0' } else { c };
    }
    delta
}

/// The line with any trailing `//` comment removed (string-literal
/// aware), so commented-out or documented mentions never trip the lint
/// — markers are read from the *raw* line elsewhere.
fn strip_comment(raw: &str) -> &str {
    let bytes = raw.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1,
            b'"' => in_str = !in_str,
            b'/' if !in_str && i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                return &raw[..i];
            }
            _ => {}
        }
        i += 1;
    }
    raw
}

fn has_marker(source: &str, number: usize, marker: &str) -> bool {
    let lines: Vec<&str> = source.lines().collect();
    let own = lines.get(number - 1).is_some_and(|l| l.contains(marker));
    let above = number >= 2 && lines.get(number - 2).is_some_and(|l| l.contains(marker));
    own || above
}

fn lint_file(rel: &str, source: &str) -> Vec<String> {
    let mut violations = Vec::new();
    for (line, number) in code_lines(source) {
        if (line.contains("std::sync") || line.contains("std::thread"))
            && !has_marker(source, number, "sync-lint: allow(std)")
        {
            violations.push(format!(
                "{rel}:{number}: direct std sync/thread use in a ported module — \
                 go through `retroweb_sync` (or justify with `// sync-lint: allow(std)`)"
            ));
        }
        if line.contains("Ordering::Relaxed") && !has_marker(source, number, "sync-lint: counter") {
            violations.push(format!(
                "{rel}:{number}: `Ordering::Relaxed` on a non-counter atomic — use SeqCst, \
                 or mark a monotonic stats counter with `// sync-lint: counter`"
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_raw_std_and_unmarked_relaxed() {
        let src = "use std::sync::Mutex;\nx.load(Ordering::Relaxed);\n";
        let v = lint_file("f.rs", src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].contains("f.rs:1"));
        assert!(v[1].contains("f.rs:2"));
    }

    #[test]
    fn markers_allow_counters_and_deliberate_std() {
        let src = "\
// sync-lint: allow(std) — timing helper, not modelled state
use std::thread;
hits.fetch_add(1, Ordering::Relaxed); // sync-lint: counter
";
        assert!(lint_file("f.rs", src).is_empty());
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "\
fn real() {}
#[cfg(test)]
mod tests {
    use std::sync::Mutex;
    fn t() { x.load(Ordering::Relaxed); }
}
";
        assert!(lint_file("f.rs", src).is_empty());
    }

    #[test]
    fn code_resumes_after_test_module() {
        let src = "\
#[cfg(all(test, unix))]
mod tests {
    use std::thread;
}
use std::sync::Arc;
";
        let v = lint_file("f.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("f.rs:5"));
    }

    #[test]
    fn comments_never_trip_the_lint() {
        let src = "//! plain `std::sync` primitives, no\nlet x = 1; // see std::thread docs\n";
        assert!(lint_file("f.rs", src).is_empty());
    }
}
